"""Tests for the :mod:`repro.parallel` chunked map executor."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import parallel
from repro.parallel import map_chunks, worker_count


def _square(x):
    return x * x


def _shout(s):
    return s.upper()


@pytest.fixture(autouse=True)
def _fresh_warnings():
    """Warn-once-per-cause state must not leak between tests."""
    parallel.reset_warnings()
    yield
    parallel.reset_warnings()


class TestWorkerCount:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV, raising=False)
        assert worker_count() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "3")
        assert worker_count() == 3

    @pytest.mark.parametrize("value", ["auto", "0", "AUTO"])
    def test_env_auto_uses_cpu_count(self, monkeypatch, value):
        monkeypatch.setenv(parallel.WORKERS_ENV, value)
        assert worker_count() >= 1

    @pytest.mark.parametrize("value", ["", "  "])
    def test_env_unset_or_blank_is_quietly_serial(self, monkeypatch, value):
        monkeypatch.setenv(parallel.WORKERS_ENV, value)
        assert worker_count() == 1

    @pytest.mark.parametrize("value", ["banana", "-2", "1.5"])
    def test_env_garbage_falls_back_to_serial_loudly(self, monkeypatch, value):
        # Bad input still resolves to serial, but never silently: a
        # RuntimeWarning plus a parallel.serial_fallback increment make a
        # misconfigured fleet diagnosable from its metrics.
        from repro import obs

        fallbacks = obs.counter("parallel.serial_fallback")
        monkeypatch.setenv(parallel.WORKERS_ENV, value)
        before = fallbacks.value
        with pytest.warns(RuntimeWarning, match="running serial"):
            assert worker_count() == 1
        assert fallbacks.value == before + 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "7")
        assert worker_count(2) == 2


class TestMapChunks:
    def test_serial_preserves_order(self):
        items = list(range(100))
        assert map_chunks(_square, items, workers=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = [f"doc {i} text" for i in range(200)]
        serial = map_chunks(_shout, items, workers=1)
        parallel_out = map_chunks(_shout, items, workers=2)
        assert parallel_out == serial

    def test_empty_input(self):
        assert map_chunks(_square, [], workers=4) == []

    def test_small_input_stays_serial(self):
        # Below the parallel threshold the pool must not be spun up at all;
        # results are still correct.
        items = list(range(parallel._MIN_PARALLEL_ITEMS - 1))
        assert map_chunks(_square, items, workers=8) == [x * x for x in items]

    def test_unpicklable_function_falls_back_to_serial(self):
        # Lambdas cannot cross a process boundary; map_chunks must degrade
        # to the serial path instead of raising — but not silently: it warns
        # and bumps the parallel.serial_fallback counter.
        from repro import obs

        fallbacks = obs.counter("parallel.serial_fallback")
        before = fallbacks.value
        items = list(range(64))
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(lambda x: x + 1, items, workers=2)
        assert result == [x + 1 for x in items]
        assert fallbacks.value == before + 1

    def test_numpy_payloads_round_trip(self):
        arrays = [np.arange(i, i + 5) for i in range(64)]
        out = map_chunks(_square, arrays, workers=2)
        for i, arr in enumerate(out):
            assert np.array_equal(arr, np.arange(i, i + 5) ** 2)


class TestWarnOnce:
    def test_repeated_fallback_warns_once_but_counts_every_event(self):
        # The identical degradation hit twice must not spam two identical
        # RuntimeWarnings — but parallel.serial_fallback still counts both.
        from repro import obs

        fallbacks = obs.counter("parallel.serial_fallback")
        before = fallbacks.value
        items = list(range(64))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                assert map_chunks(lambda x: x + 1, items, workers=2) == [
                    x + 1 for x in items
                ]
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 1
        assert "process pool unavailable" in str(runtime[0].message)
        assert fallbacks.value == before + 3

    def test_distinct_causes_each_warn(self, monkeypatch):
        # A different cause is new information and gets its own warning.
        items = list(range(64))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            map_chunks(lambda x: x, items, workers=2)  # unpicklable
            monkeypatch.setenv(parallel.WORKERS_ENV, "banana")
            worker_count()  # misconfigured env
        runtime = [w for w in caught if w.category is RuntimeWarning]
        assert len(runtime) == 2

    def test_reset_warnings_allows_rewarn(self):
        items = list(range(64))
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            map_chunks(lambda x: x, items, workers=2)
        parallel.reset_warnings()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            map_chunks(lambda x: x, items, workers=2)


class TestChunkIntervals:
    def test_pool_chunks_ship_busy_intervals_to_active_sampler(self):
        from repro.obs import sampler

        items = [f"doc {i} text" for i in range(200)]
        sampler.start(50.0)
        try:
            result = map_chunks(_shout, items, workers=2)
        finally:
            timeline = sampler.stop()
        assert result == [s.upper() for s in items]
        marks = timeline["worker_intervals"]
        assert marks and all(m["label"] == "parallel.chunk" for m in marks)
        for mark in marks:
            assert isinstance(mark["pid"], int)
            assert mark["t1"] >= mark["t0"]

    def test_pool_chunks_cost_nothing_when_sampler_is_off(self):
        from repro.obs import sampler

        items = [f"doc {i} text" for i in range(200)]
        assert map_chunks(_shout, items, workers=2) == [
            s.upper() for s in items
        ]
        assert sampler.drain_intervals() == []


class TestPipelineInvariance:
    def test_cluster_batches_invariant_to_workers(self, released, monkeypatch):
        from repro.enrichment.clustering import cluster_batches

        html = dict(list(sorted(released.batch_html.items()))[:80])
        monkeypatch.setenv(parallel.WORKERS_ENV, "1")
        serial = cluster_batches(html)
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        assert cluster_batches(html) == serial

    def test_design_extraction_invariant_to_workers(self, released, monkeypatch):
        from repro.enrichment.design import extract_design_parameters

        ids = sorted(released.batch_html)[:60]
        html = {b: released.batch_html[b] for b in ids}
        monkeypatch.setenv(parallel.WORKERS_ENV, "1")
        serial = extract_design_parameters(html)
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        parallel_table = extract_design_parameters(html)
        assert list(serial.column_names) == list(parallel_table.column_names)
        for name in serial.column_names:
            a, b = serial[name], parallel_table[name]
            if a.dtype == object:
                assert a.tolist() == b.tolist()
            else:
                assert np.array_equal(a, b, equal_nan=np.issubdtype(
                    a.dtype, np.floating
                ))


def _fail_on_b(s):
    if s == "b":
        raise ValueError("no b allowed")
    return s.upper()


class TestChunkRunnerInProcess:
    """The chunk runner normally executes in forked workers; it is
    process-agnostic, so its guarded-result protocol, fault hooks, and
    telemetry capture are unit-tested here by calling it inline."""

    @pytest.fixture(autouse=True)
    def _no_faults(self):
        from repro import faults

        faults.configure(None)
        yield
        faults.configure(None)

    def test_shippable_passes_picklable_and_wraps_unpicklable(self):
        plain = ValueError("fine")
        assert parallel._shippable(plain) is plain

        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        wrapped = parallel._shippable(Unpicklable("boom"))
        assert isinstance(wrapped, RuntimeError)
        assert "unpicklable Unpicklable" in str(wrapped)

    def test_untraced_call_guards_results_and_marks_interval(self):
        import os
        import time

        runner = parallel._ChunkRunner(_shout, traced=False)
        before = time.perf_counter()
        guarded, spans, deltas, hist_deltas, mark = runner(["a", "b"])
        after = time.perf_counter()
        assert guarded == [(True, "A"), (True, "B")]
        assert spans is None
        # The runner's own chunk timing rides the histogram deltas.
        assert hist_deltas and "parallel.chunk_seconds" in hist_deltas
        pid, t0, t1 = mark
        assert pid == os.getpid()
        assert before <= t0 <= t1 <= after

    def test_traced_call_collects_and_still_guards(self):
        runner = parallel._ChunkRunner(_shout, traced=True)
        guarded, spans, deltas, hist_deltas, mark = runner(["x"])
        assert guarded == [(True, "X")]
        assert spans is not None  # the collector ran (may be empty spans)
        assert len(mark) == 3

    def test_error_is_guarded_and_stops_the_chunk(self):
        runner = parallel._ChunkRunner(_fail_on_b, traced=False)
        guarded, *_ = runner(["a", "b", "c"])
        assert guarded[0] == (True, "A")
        ok, exc = guarded[1]
        assert not ok and isinstance(exc, ValueError)
        assert len(guarded) == 2  # "c" never ran: parent raises at first error

    def test_injected_chunk_fault_raises_like_a_crash(self):
        from repro import faults

        faults.configure("pool.chunk:fail")
        runner = parallel._ChunkRunner(_shout, traced=False)
        with pytest.raises(faults.InjectedFault):
            runner(["a"])

    def test_injected_hang_sleeps_then_completes(self, monkeypatch):
        from repro import faults

        monkeypatch.setattr(parallel, "_HANG_SLEEP_S", 0.01)
        faults.configure("pool.chunk:hang")
        runner = parallel._ChunkRunner(_shout, traced=False)
        guarded, *_ = runner(["a"])
        assert guarded == [(True, "A")]
