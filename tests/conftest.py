"""Shared fixtures: one tiny study per test session.

Building a study runs the full simulate → release → enrich pipeline; at the
``tiny`` preset this takes a few seconds, so it is session-scoped and
shared.  Tests must treat it as read-only.
"""

from __future__ import annotations

import pytest

from repro import Study, build_study


@pytest.fixture(scope="session")
def study() -> Study:
    """The canonical tiny study (seed 7) used across the test suite."""
    return build_study("tiny", seed=7)


@pytest.fixture(scope="session")
def state(study):
    return study.state


@pytest.fixture(scope="session")
def released(study):
    return study.released


@pytest.fixture(scope="session")
def enriched(study):
    return study.enriched


@pytest.fixture(scope="session")
def figures(study):
    return study.figures
