"""Shared fixtures: one tiny study per test session.

Building a study runs the full simulate → release → enrich pipeline; at the
``tiny`` preset this takes a few seconds, so it is session-scoped and
shared.  Tests must treat it as read-only.
"""

from __future__ import annotations

import os

import pytest

from repro import Study, build_study


@pytest.fixture(scope="session", autouse=True)
def _isolated_study_cache(tmp_path_factory):
    """Point the study cache at a per-session temp dir.

    Keeps test runs hermetic (no reads from a stale user-level cache, no
    writes outside the temp tree) while still exercising the store/load
    path whenever two tests build the same configuration.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("study_cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_ledger(tmp_path_factory):
    """Point the run ledger at a per-session temp dir.

    CLI smoke tests record real ledger entries; those must never land in
    the developer's (or CI pipeline's) ``.repro-ledger``.
    """
    previous = os.environ.get("REPRO_LEDGER_DIR")
    os.environ["REPRO_LEDGER_DIR"] = str(tmp_path_factory.mktemp("run_ledger"))
    yield
    if previous is None:
        os.environ.pop("REPRO_LEDGER_DIR", None)
    else:
        os.environ["REPRO_LEDGER_DIR"] = previous


@pytest.fixture(scope="session")
def study() -> Study:
    """The canonical tiny study (seed 7) used across the test suite."""
    return build_study("tiny", seed=7)


@pytest.fixture(scope="session")
def state(study):
    return study.state


@pytest.fixture(scope="session")
def released(study):
    return study.released


@pytest.fixture(scope="session")
def enriched(study):
    return study.enriched


@pytest.fixture(scope="session")
def figures(study):
    return study.figures
