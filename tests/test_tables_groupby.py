"""Unit tests for repro.tables.groupby."""

import numpy as np
import pytest

from repro.tables import Table, group_by
from repro.tables.table import SchemaError


def sales():
    return Table(
        {
            "region": ["east", "west", "east", "west", "east"],
            "product": ["a", "a", "b", "b", "a"],
            "units": [10, 20, 30, 40, 50],
            "price": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


class TestGrouping:
    def test_single_key_counts(self):
        g = group_by(sales(), "region").agg({"n": ("units", "count")})
        rows = {r["region"]: r["n"] for r in g.to_rows()}
        assert rows == {"east": 3, "west": 2}

    def test_multi_key(self):
        g = group_by(sales(), ["region", "product"]).agg(
            {"n": ("units", "count")}
        )
        assert g.num_rows == 4

    def test_unknown_key(self):
        with pytest.raises(SchemaError):
            group_by(sales(), "nope")

    def test_empty_table(self):
        t = Table.empty({"k": "str", "v": "float"})
        g = group_by(t, "k").agg({"n": ("v", "count")})
        assert g.num_rows == 0

    def test_num_groups(self):
        assert group_by(sales(), "region").num_groups == 2

    def test_segments_partition_rows(self):
        segments = group_by(sales(), "region").segments()
        all_rows = sorted(int(i) for seg in segments for i in seg)
        assert all_rows == [0, 1, 2, 3, 4]


class TestAggregations:
    def test_sum_mean_min_max(self):
        g = group_by(sales(), "region").agg(
            {
                "total": ("units", "sum"),
                "avg": ("units", "mean"),
                "lo": ("units", "min"),
                "hi": ("units", "max"),
            }
        )
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["total"] == 90
        assert east["avg"] == pytest.approx(30.0)
        assert east["lo"] == 10 and east["hi"] == 50

    def test_median(self):
        g = group_by(sales(), "region").agg({"med": ("units", "median")})
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["med"] == 30.0

    def test_percentile(self):
        g = group_by(sales(), "region").agg({"p50": ("units", "p50")})
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["p50"] == 30.0

    def test_std(self):
        g = group_by(sales(), "product").agg({"sd": ("price", "std")})
        a = next(r for r in g.to_rows() if r["product"] == "a")
        assert a["sd"] == pytest.approx(np.std([1.0, 2.0, 5.0]))

    def test_nunique(self):
        g = group_by(sales(), "region").agg({"k": ("product", "nunique")})
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["k"] == 2

    def test_first_last(self):
        g = group_by(sales(), "region").agg(
            {"f": ("units", "first"), "l": ("units", "last")}
        )
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["f"] == 10 and east["l"] == 50

    def test_collect(self):
        g = group_by(sales(), "region").agg({"all": ("units", "collect")})
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["all"] == [10, 30, 50]

    def test_callable(self):
        g = group_by(sales(), "region").agg(
            {"span": ("units", lambda seg: float(seg.max() - seg.min()))}
        )
        east = next(r for r in g.to_rows() if r["region"] == "east")
        assert east["span"] == 40.0

    def test_string_column_sum_rejected(self):
        with pytest.raises(SchemaError, match="numeric"):
            group_by(sales(), "region").agg({"x": ("product", "sum")})

    def test_unknown_aggregation(self):
        with pytest.raises(SchemaError, match="unknown aggregation"):
            group_by(sales(), "region").agg({"x": ("units", "mode")})

    def test_duplicate_output_column(self):
        with pytest.raises(SchemaError, match="duplicate"):
            group_by(sales(), "region").agg({"region": ("units", "sum")})

    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 20, size=500)
        values = rng.normal(size=500)
        t = Table({"k": keys, "v": values})
        g = group_by(t, "k").agg({"s": ("v", "sum"), "m": ("v", "median")})
        for row in g.to_rows():
            mask = keys == row["k"]
            assert row["s"] == pytest.approx(values[mask].sum())
            assert row["m"] == pytest.approx(np.median(values[mask]))
