"""Regression tests: the vectorized clustering path is exact.

The reference implementations below are verbatim copies of the pre-
vectorization (seed) algorithms — per-shingle Python hashing, per-document
minhash, per-pair set Jaccard, banded LSH with incremental union-find.  The
vectorized pipeline must reproduce their outputs *identically*: same shingle
hash values, same signatures, and the same ``batch_id -> cluster_id``
mapping on a real (tiny-study) HTML corpus.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.enrichment.clustering import (
    _crc32_batch,
    _jaccard_sorted,
    _POLY_BASE,
    _shingle_array,
    _shingle_hash,
    _UnionFind,
    cluster_batches,
    jaccard,
    minhash_signature,
    minhash_signatures,
    shingles,
    _tokens,
)

# --------------------------------------------------------------------- #
# Seed (pre-vectorization) reference implementations
# --------------------------------------------------------------------- #


def _reference_shingles(html: str, *, k: int = 4) -> set[int]:
    token_hashes = [zlib.crc32(t.encode()) for t in _tokens(html)]
    if len(token_hashes) < k:
        return {_shingle_hash(token_hashes)}
    return {
        _shingle_hash(token_hashes[i:i + k])
        for i in range(len(token_hashes) - k + 1)
    }


class _ReferenceUnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[ry] = rx


def _reference_cluster_batches(
    html_by_batch, *, threshold=0.60, num_perm=64, bands=16, seed=1234
):
    batch_ids = sorted(html_by_batch)
    all_sets = [_reference_shingles(html_by_batch[b]) for b in batch_ids]

    rep_of_key: dict[frozenset, int] = {}
    rep_index = np.empty(len(batch_ids), dtype=np.int64)
    for i, s in enumerate(all_sets):
        key = frozenset(s)
        rep_index[i] = rep_of_key.setdefault(key, len(rep_of_key))
    reps = sorted(rep_of_key.items(), key=lambda kv: kv[1])
    shingle_sets = [set(key) for key, _ in reps]
    signatures = [
        minhash_signature(s, num_perm=num_perm, seed=seed) for s in shingle_sets
    ]

    rows = num_perm // bands
    uf = _ReferenceUnionFind(len(shingle_sets))
    verified: set[tuple[int, int]] = set()
    for band in range(bands):
        buckets: dict[bytes, list[int]] = {}
        lo, hi = band * rows, (band + 1) * rows
        for i, sig in enumerate(signatures):
            buckets.setdefault(sig[lo:hi].tobytes(), []).append(i)
        for members in buckets.values():
            if len(members) < 2:
                continue
            anchor = members[0]
            for other in members[1:]:
                pair = (anchor, other)
                if pair in verified or uf.find(anchor) == uf.find(other):
                    continue
                verified.add(pair)
                if jaccard(shingle_sets[anchor], shingle_sets[other]) >= threshold:
                    uf.union(anchor, other)

    cluster_of_root: dict[int, int] = {}
    result: dict[int, int] = {}
    for i, batch_id in enumerate(batch_ids):
        root = uf.find(int(rep_index[i]))
        if root not in cluster_of_root:
            cluster_of_root[root] = len(cluster_of_root)
        result[batch_id] = cluster_of_root[root]
    return result


# --------------------------------------------------------------------- #
# Primitive equivalence
# --------------------------------------------------------------------- #


class TestVectorizedPrimitives:
    def test_crc32_batch_matches_zlib(self):
        rng = np.random.default_rng(0)
        tokens = [b"", b"a", b"<div class='x'>", "héllo☃".encode(), b"y" * 300]
        tokens += [
            bytes(rng.integers(0, 256, size=rng.integers(1, 40), dtype=np.uint8))
            for _ in range(200)
        ]
        assert list(_crc32_batch(tokens)) == [zlib.crc32(t) for t in tokens]

    @pytest.mark.parametrize(
        "html",
        [
            "",
            "one",
            "a b c",  # fewer tokens than the shingle width
            "<div>x</div> " + " ".join(f"tok{i % 37}" for i in range(500)),
            "unicode é ü ☃ <p>text</p>",
            '<div data-unit="u-1">unit-12345 body</div>',
        ],
    )
    def test_shingles_match_reference(self, html):
        assert shingles(html) == _reference_shingles(html)

    def test_shingle_values_stay_below_2_61(self):
        arr = _shingle_array("<p>" + " ".join(f"w{i}" for i in range(100)))
        assert int(arr.max()) < 1 << 61

    def test_batch_signatures_match_per_document(self):
        docs = ["a b c d e f", "x " * 50, "<div>q</div> r s t u", ""]
        arrays = [_shingle_array(d) for d in docs]
        batch = minhash_signatures(arrays, num_perm=32)
        for i, arr in enumerate(arrays):
            expected = minhash_signature(set(map(int, arr)), num_perm=32)
            assert np.array_equal(batch[i], expected)

    def test_batch_signatures_empty_document_is_sentinel(self):
        batch = minhash_signatures([np.empty(0, dtype=np.uint64)], num_perm=16)
        assert np.array_equal(
            batch[0], np.full(16, np.iinfo(np.uint64).max, dtype=np.uint64)
        )

    def test_sorted_jaccard_matches_set_jaccard(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = set(map(int, rng.integers(0, 60, size=rng.integers(0, 40))))
            b = set(map(int, rng.integers(0, 60, size=rng.integers(0, 40))))
            va = np.array(sorted(a), dtype=np.uint64)
            vb = np.array(sorted(b), dtype=np.uint64)
            assert _jaccard_sorted(va, vb) == pytest.approx(jaccard(a, b))

    def test_poly_step_exact_at_accumulator_extremes(self):
        # Accumulators near 2^61 exercise the 128-bit split in _poly_step.
        high = (1 << 61) - 3
        token = 0xFFFFFFFF
        expected = ((high * _POLY_BASE + token) & 0x1FFFFFFFFFFFFFFF)
        from repro.enrichment.clustering import _poly_step

        acc = np.array([high], dtype=np.uint64)
        h = np.array([token], dtype=np.uint64)
        assert int(_poly_step(acc, h)[0]) == expected


# --------------------------------------------------------------------- #
# End-to-end mapping regression
# --------------------------------------------------------------------- #


class TestClusterMappingRegression:
    def test_identical_mapping_on_tiny_study(self, released):
        html = released.batch_html
        assert len(html) > 50  # meaningful corpus
        assert cluster_batches(html) == _reference_cluster_batches(html)

    def test_identical_mapping_at_other_thresholds(self, released):
        html = dict(list(sorted(released.batch_html.items()))[:120])
        for threshold in (0.3, 0.9):
            assert cluster_batches(html, threshold=threshold) == (
                _reference_cluster_batches(html, threshold=threshold)
            )


# --------------------------------------------------------------------- #
# Union-find
# --------------------------------------------------------------------- #


class TestUnionFind:
    def test_pathological_chain_merge_stays_shallow(self):
        n = 10_000
        uf = _UnionFind(n)
        # Sequential chain unions: the degenerate order for a union-find
        # without balancing (linear chains, quadratic total work).
        for i in range(n - 1):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(n))
        # Raw parent-pointer depth (no compression during measurement) must
        # stay logarithmic thanks to union-by-size.
        max_depth = 0
        for i in range(n):
            depth, x = 0, i
            while uf.parent[x] != x:
                x = uf.parent[x]
                depth += 1
            max_depth = max(max_depth, depth)
        assert max_depth <= 15

    def test_tournament_merge_order(self):
        n = 1 << 12
        uf = _UnionFind(n)
        stride = 1
        while stride < n:
            for i in range(0, n, 2 * stride):
                uf.union(i, i + stride)
            stride *= 2
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(n))
        assert uf.size[root] == n

    def test_partition_matches_naive(self):
        rng = np.random.default_rng(3)
        n = 500
        edges = [tuple(map(int, rng.integers(0, n, 2))) for _ in range(400)]
        uf = _UnionFind(n)
        naive_parent = list(range(n))

        def naive_find(x):
            while naive_parent[x] != x:
                x = naive_parent[x]
            return x

        for a, b in edges:
            uf.union(a, b)
            ra, rb = naive_find(a), naive_find(b)
            if ra != rb:
                naive_parent[rb] = ra
        groups_fast = {}
        groups_naive = {}
        for i in range(n):
            groups_fast.setdefault(uf.find(i), set()).add(i)
            groups_naive.setdefault(naive_find(i), set()).add(i)
        assert sorted(map(sorted, groups_fast.values())) == sorted(
            map(sorted, groups_naive.values())
        )
