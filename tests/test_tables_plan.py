"""Lazy plan engine: optimizer equivalence, fusion, pushdown, parallelism.

The central property: for any operator chain, ``collect()`` of the lazy
plan is byte-identical to applying the same operators eagerly, and to
collecting with ``REPRO_TABLES_EAGER=1`` (optimizer and parallel dispatch
disabled).  Hypothesis drives random chains; targeted tests pin down each
optimizer rewrite and its counters.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.tables import Table, col, group_by, hash_join, profile_hotspots
from repro.tables.plan import EAGER_ENV, LazyFrame, optimize
from repro.tables.table import SchemaError


def _tables_equal_bytes(a: Table, b: Table) -> bool:
    if a.column_names != b.column_names or len(a) != len(b):
        return False
    for name in a.column_names:
        xa, xb = a[name], b[name]
        if xa.dtype != xb.dtype:
            return False
        if xa.dtype == object:
            if not all(
                (x is None and y is None) or x == y for x, y in zip(xa, xb)
            ):
                return False
        elif not np.array_equal(xa, xb, equal_nan=(xa.dtype.kind == "f")):
            return False
    return True


def _base_table(n: int, seed: int) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "k": rng.integers(0, max(n // 4, 1) + 1, size=n),
            "x": rng.normal(size=n),
            "s": np.array(
                [f"s{int(v) % 5}" for v in rng.integers(0, 100, size=n)],
                dtype=object,
            ),
        },
        copy=False,
    )


# One random relational operator, as (lazy builder, eager reference) pair.
_OPS = st.sampled_from(
    [
        ("filter_x", lambda lf: lf.filter(col("x") > 0.0),
         lambda t: t.filter(t["x"] > 0.0)),
        ("filter_k", lambda lf: lf.filter(col("k") <= 3),
         lambda t: t.filter(t["k"] <= 3)),
        ("filter_s", lambda lf: lf.filter(col("s").ne("s3")),
         lambda t: t.filter(
             np.array([v != "s3" for v in t["s"]], dtype=bool)
         )),
        ("select", lambda lf: lf.select(["k", "x"]),
         lambda t: t.select(["k", "x"])),
        ("with_col", lambda lf: lf.with_column("y", col("x") * 2.0),
         lambda t: t.with_column("y", t["x"] * 2.0)),
        ("rename", lambda lf: lf.rename({"k": "kk"}).rename({"kk": "k"}),
         lambda t: t.rename({"k": "kk"}).rename({"kk": "k"})),
        ("sort", lambda lf: lf.sort_by("k"), lambda t: t.sort_by("k")),
        ("distinct", lambda lf: lf.distinct(["k"]),
         lambda t: t.distinct(["k"])),
        ("head", lambda lf: lf.head(7), lambda t: t.head(7)),
    ]
)


@given(st.integers(0, 40), st.integers(0, 10**6), st.lists(_OPS, max_size=5))
@settings(max_examples=80, deadline=None)
def test_random_plan_matches_eager_reference(n, seed, ops):
    table = _base_table(n, seed)
    frame = table.lazy()
    eager = table
    applied = []
    for name, lazy_op, eager_op in ops:
        if name in ("filter_x", "with_col") and "x" not in eager:
            continue  # a prior select/projection may have dropped it
        if name == "filter_s" and "s" not in eager:
            continue
        if name in ("filter_k", "sort", "distinct", "rename", "select") and (
            "k" not in eager or (name == "select" and "x" not in eager)
        ):
            continue
        frame = lazy_op(frame)
        eager = eager_op(eager)
        applied.append(name)
    collected = frame.collect()
    assert _tables_equal_bytes(collected, eager), applied


@given(st.integers(0, 40), st.integers(0, 10**6), st.lists(_OPS, max_size=5))
@settings(max_examples=40, deadline=None)
def test_random_plan_matches_unoptimized_run(n, seed, ops):
    table = _base_table(n, seed)

    def build():
        frame = table.lazy()
        skip = set()
        for name, lazy_op, _ in ops:
            if name == "select":
                skip.update({"filter_s"})
            if name in skip:
                continue
            try:
                frame = lazy_op(frame)
            except SchemaError:
                continue
        return frame

    optimized = build().collect()
    os.environ[EAGER_ENV] = "1"
    try:
        unoptimized = build().collect()
    finally:
        os.environ.pop(EAGER_ENV, None)
    assert _tables_equal_bytes(optimized, unoptimized)


def test_filter_chain_fuses_and_matches_sequential():
    table = _base_table(500, 3)
    obs.REGISTRY.counter("plan.fused_ops").reset()
    frame = (
        table.lazy()
        .filter(col("x") > -1.0)
        .filter(col("k") <= 5)
        .filter(col("x") < 1.0)
    )
    out = frame.collect()
    ref = (
        table.filter(table["x"] > -1.0)
        .filter(lambda t: t["k"] <= 5)
        .filter(lambda t: t["x"] < 1.0)
    )
    assert _tables_equal_bytes(out, ref)
    assert obs.REGISTRY.counter_values()["plan.fused_ops"] >= 2


def test_projection_pushdown_below_group_by():
    table = _base_table(300, 4)
    frame = (
        table.lazy()
        .filter(col("x") > 0.0)
        .group_by("k")
        .agg({"total": ("x", "sum")})
    )
    rendered = LazyFrame(optimize(frame._node)).explain()
    # The filter gains a fused projection onto the group-by inputs, so the
    # unused string column is never gathered.
    assert "fused_filter" in rendered
    assert "'k', 'x'" in rendered
    out = frame.collect()
    ref = group_by(table.filter(table["x"] > 0.0), "k").agg(
        {"total": ("x", "sum")}
    )
    assert _tables_equal_bytes(out, ref)


def test_projection_pushdown_below_join_keeps_suffix_naming():
    left = _base_table(200, 5)
    right = _base_table(50, 6).rename({"s": "tag"})
    frame = (
        left.lazy()
        .join(right, on="k", how="left")
        .select(["k", "x", "tag"])
    )
    out = frame.collect()
    ref = hash_join(left, right, on="k", how="left").select(["k", "x", "tag"])
    assert _tables_equal_bytes(out, ref)
    # Colliding non-key names must keep their suffix decisions.
    frame2 = left.lazy().join(right, on="k").select(["k", "x_right"])
    ref2 = hash_join(left, right, on="k").select(["k", "x_right"])
    assert _tables_equal_bytes(frame2.collect(), ref2)


def test_collect_is_memoized_per_frame():
    table = _base_table(50, 7)
    frame = table.lazy().filter(col("x") > 0.0)
    first = frame.collect()
    before = obs.REGISTRY.counter_values().get("plan.cache_hit", 0)
    second = frame.collect()
    assert second is first
    assert obs.REGISTRY.counter_values()["plan.cache_hit"] == before + 1


def test_shared_subplan_result_matches_eager():
    table = _base_table(400, 8)
    base = table.lazy().filter(col("x") > 0.0)
    joined = base.join(
        LazyFrame(base._node).group_by("k").agg({"m": ("x", "mean")}),
        on="k",
    )
    out = joined.collect()
    filtered = table.filter(table["x"] > 0.0)
    ref = hash_join(
        filtered, group_by(filtered, "k").agg({"m": ("x", "mean")}), on="k"
    )
    assert _tables_equal_bytes(out, ref)


def test_worker_fanout_matches_serial(monkeypatch):
    table = _base_table(300_000, 9)
    predicate = (col("x") > -0.5) & (col("x") < 0.5)

    def run():
        return (
            table.lazy()
            .filter(predicate)
            .filter(col("k") > 2)
            .collect()
        )

    serial = run()
    monkeypatch.setenv("REPRO_WORKERS", "2")
    parallel = run()
    assert _tables_equal_bytes(serial, parallel)


def test_eager_filter_shim_matches_plan_kernel():
    table = _base_table(200, 10)
    mask = table["x"] > 0.0
    assert _tables_equal_bytes(
        table.filter(mask), table.lazy().filter(mask).collect()
    )
    with pytest.raises(SchemaError):
        table.filter(np.ones(3, dtype=bool))


def test_explain_renders_plan_nodes():
    table = _base_table(20, 11)
    text = (
        table.lazy()
        .filter(col("x") > 0.0)
        .filter(col("k") <= 2)
        .select(["k"])
        .explain()
    )
    assert "scan" in text.lower()
    assert "filter" in text.lower()


@given(st.integers(0, 40), st.integers(0, 10**6), st.lists(_OPS, max_size=5))
@settings(max_examples=80, deadline=None)
def test_profile_row_counts_are_conservation_consistent(n, seed, ops):
    """Every operator's rows-in must equal its children's rows-out, and the
    analyzed execution must produce the byte-identical result."""
    table = _base_table(n, seed)
    frame = table.lazy()
    eager = table
    for name, lazy_op, eager_op in ops:
        if name in ("filter_x", "with_col") and "x" not in eager:
            continue
        if name == "filter_s" and "s" not in eager:
            continue
        if name in ("filter_k", "sort", "distinct", "rename", "select") and (
            "k" not in eager or (name == "select" and "x" not in eager)
        ):
            continue
        frame = lazy_op(frame)
        eager = eager_op(eager)
    root = frame.profile()
    for prof in root.walk():
        assert len(prof.rows_in) == len(prof.children)
        for rows_in, child in zip(prof.rows_in, prof.children):
            assert child.rows_out == rows_in
        assert prof.wall_s >= 0.0
    assert root.rows_out == len(eager)
    # profile() cached the analyzed result on the frame.
    assert _tables_equal_bytes(frame.collect(), eager)


def test_explain_analyze_annotates_rows_and_selectivity():
    table = _base_table(500, 21)
    before = obs.REGISTRY.counter_values().get("plan.analyzed", 0)
    frame = (
        table.lazy()
        .filter(col("x") > 0.0)
        .filter(col("k") <= 3)
        .group_by("k")
        .agg({"m": ("x", "mean")})
    )
    text = frame.explain(analyze=True)
    assert "rows=" in text and "wall=" in text and "cpu=" in text
    # The fused predicate pair reports one selectivity factor per predicate.
    assert "sel=" in text
    assert obs.REGISTRY.counter_values()["plan.analyzed"] == before + 1
    # The profile is memoized with the explain call: no second execution.
    root = frame.profile()
    assert obs.REGISTRY.counter_values()["plan.analyzed"] == before + 1
    sel = next(p for p in root.walk() if p.survivors).selectivity
    assert all(0.0 <= s <= 1.0 for s in sel)
    hot = profile_hotspots(root, top=3)
    assert 1 <= len(hot) <= 3
    assert all(
        hot[i].wall_s >= hot[i + 1].wall_s for i in range(len(hot) - 1)
    )


def test_profile_counts_memo_hits_for_shared_subplan():
    table = _base_table(400, 22)
    base = table.lazy().filter(col("x") > 0.0)
    joined = base.join(
        LazyFrame(base._node).group_by("k").agg({"m": ("x", "mean")}),
        on="k",
    )
    root = joined.profile()
    assert sum(p.memo_hits for p in root.walk()) >= 1


def test_profile_records_parallel_mask_fanout(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    table = _base_table(300_000, 23)
    frame = (
        table.lazy()
        .filter((col("x") > -0.5) & (col("x") < 0.5))
        .filter(col("k") > 2)
    )
    root = frame.profile()
    filters = [
        p for p in root.walk() if p.op in ("filter", "fused_filter")
    ]
    assert any(p.fanout >= 2 for p in filters)
    serial = (
        table.lazy()
        .filter((col("x") > -0.5) & (col("x") < 0.5))
        .filter(col("k") > 2)
    )
    monkeypatch.delenv("REPRO_WORKERS")
    assert _tables_equal_bytes(frame.collect(), serial.collect())


def test_select_unknown_column_raises_at_build_time():
    table = _base_table(10, 12)
    with pytest.raises(SchemaError):
        table.lazy().select(["nope"])
    with pytest.raises(SchemaError):
        table.lazy().rename({"nope": "x2"})


def test_eager_env_disables_optimizer(monkeypatch):
    table = _base_table(100, 13)
    monkeypatch.setenv(EAGER_ENV, "1")
    obs.REGISTRY.counter("plan.fused_ops").reset()
    out = (
        table.lazy().filter(col("x") > 0.0).filter(col("k") <= 3).collect()
    )
    ref = table.filter(table["x"] > 0.0)
    ref = ref.filter(ref["k"] <= 3)
    assert _tables_equal_bytes(out, ref)
    assert obs.REGISTRY.counter_values().get("plan.fused_ops", 0) == 0
