"""Property-based laws for the incremental ingest service.

Hypothesis generates arbitrary synthetic marketplaces (catalog rows,
instance rows, HTML docs), arbitrary partitionings of them into
micro-batches, and arbitrary arrival orders, then checks the laws
:mod:`repro.service.state` documents **at the service layer** — through
``ServiceState.ingest`` with real wire payloads, not the merge kernels in
isolation:

- **Partition + order invariance**: every served table (released tables
  and all three streaming aggregates) depends only on the *set* of rows
  ingested, never on how they were batched or in what order they arrived.
- **Rejected payloads change nothing**: a duplicate or malformed
  micro-batch leaves every standing aggregate byte-identical.

The HTTP-layer half pins the cache contract: the ETag changes *iff* the
served bytes change (ingests into other layers leave it fixed), a stale
``If-None-Match`` gets the fresh 200, and a current one gets a bodyless
304.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, obs
from repro.obs import live
from repro.service import ServiceApp, ServiceClient
from repro.service.app import table_body
from repro.service.codec import WIRE_SCHEMA_VERSION, encode_table
from repro.service.state import IngestError, ServiceState
from repro.simulator.config import SimulationConfig
from repro.tables import Table


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    from repro import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    faults.configure(None)
    yield
    obs.finish()
    faults.configure(None)
    server = live.active_server()
    if server is not None:
        server.stop()


CONFIG = SimulationConfig.preset("tiny", seed=7)


def _config_key() -> str:
    from repro import cache as study_cache

    return study_cache.study_key(CONFIG)


# --------------------------------------------------------------------- #
# Synthetic wire data
# --------------------------------------------------------------------- #

# One instance row: (batch, item, worker, start, duration, trust-or-None,
# source, country).  instance_id is the row's index, so rows are unique.
_instance_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=8000),
        st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        st.sampled_from(["own", "chan-a", "chan-b"]),
        st.sampled_from(["US", "IN", "GB", "PH"]),
    ),
    min_size=1,
    max_size=40,
)

_catalog_rows = st.lists(
    st.tuples(
        st.text(alphabet="abcdef ", min_size=0, max_size=12),
        st.integers(min_value=0, max_value=10**6),
        st.booleans(),
    ),
    min_size=1,
    max_size=20,
)


def _instances_table(rows, ids) -> Table:
    return Table({
        "instance_id": np.array(ids, dtype=np.int64),
        "batch_id": np.array([r[0] for r in rows], dtype=np.int64),
        "item_id": np.array([r[1] for r in rows], dtype=np.int64),
        "worker_id": np.array([r[2] for r in rows], dtype=np.int64),
        "source": np.array([r[6] for r in rows], dtype=object),
        "country": np.array([r[7] for r in rows], dtype=object),
        "start_time": np.array([r[3] for r in rows], dtype=np.int64),
        "end_time": np.array([r[3] + r[4] for r in rows], dtype=np.int64),
        "trust": np.array(
            [np.nan if r[5] is None else r[5] for r in rows],
            dtype=np.float64,
        ),
        "response": np.array([f"resp-{i}" for i in ids], dtype=object),
    })


def _catalog_table(rows, ids) -> Table:
    return Table({
        "batch_id": np.array(ids, dtype=np.int64),
        "title": np.array([r[0] for r in rows], dtype=object),
        "created_at": np.array([r[1] for r in rows], dtype=np.int64),
        "sampled": np.array([r[2] for r in rows], dtype=bool),
    })


def _payload(catalog=None, instances=None, html=None) -> dict:
    payload = {"schema": WIRE_SCHEMA_VERSION, "config_key": _config_key()}
    if catalog is not None and catalog.num_rows:
        payload["catalog"] = encode_table(catalog)
    if instances is not None and instances.num_rows:
        payload["instances"] = encode_table(instances)
    if html:
        payload["html"] = {str(k): v for k, v in html.items()}
    return payload


def _partition(indices: list[int], cuts: list[int]) -> list[list[int]]:
    parts, last = [], 0
    for cut in sorted(set(cuts)):
        if last < cut < len(indices):
            parts.append(indices[last:cut])
            last = cut
    parts.append(indices[last:])
    return [part for part in parts if part]


def _stream_bytes(state: ServiceState) -> dict[str, bytes | None]:
    """Every streaming route's bytes; ``None`` where that layer is empty
    (e.g. no catalog ingested, or every trust value NaN) — the sentinel
    must then match on both sides of an equivalence check."""
    out: dict[str, bytes | None] = {}
    for name, read in (
        ("catalog", state.catalog_table),
        ("instances", state.instances_table),
        ("batch_rollup", state.rollup_table),
        ("trust_cdf", state.trust_cdf),
        ("duration_hist", state.duration_hist),
    ):
        try:
            out[name] = table_body(read())
        except IngestError:
            out[name] = None
    return out


# --------------------------------------------------------------------- #
# Fold laws at the service layer
# --------------------------------------------------------------------- #


class TestIngestLaws:
    @settings(max_examples=25, deadline=None)
    @given(
        inst_rows=_instance_rows,
        cat_rows=_catalog_rows,
        cuts=st.lists(
            st.integers(min_value=1, max_value=39), max_size=5
        ),
        order_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_partition_and_order_invariance(
        self, inst_rows, cat_rows, cuts, order_seed
    ):
        # Reference: everything in one micro-batch.
        reference = ServiceState(CONFIG)
        all_instances = _instances_table(inst_rows, list(range(len(inst_rows))))
        all_catalog = _catalog_table(cat_rows, list(range(len(cat_rows))))
        html = {i: f"<html>{i}</html>" for i in range(len(cat_rows))}
        reference.ingest(
            _payload(catalog=all_catalog, instances=all_instances, html=html)
        )
        expect = _stream_bytes(reference)

        # Same rows, arbitrary partitioning, arbitrary arrival order;
        # rows inside each part arrive shuffled too.
        rng = np.random.default_rng(order_seed)
        shuffled = [int(i) for i in rng.permutation(len(inst_rows))]
        parts = _partition(shuffled, cuts)
        incremental = ServiceState(CONFIG)
        for part in rng.permutation(len(parts)):
            idx = parts[int(part)]
            rows = [inst_rows[i] for i in idx]
            incremental.ingest(
                _payload(instances=_instances_table(rows, idx))
            )
        cat_order = [int(i) for i in rng.permutation(len(cat_rows))]
        half = len(cat_order) // 2 or 1
        for idx in (cat_order[:half], cat_order[half:]):
            if not idx:
                continue
            rows = [cat_rows[i] for i in idx]
            incremental.ingest(
                _payload(
                    catalog=_catalog_table(rows, idx),
                    html={i: html[i] for i in idx},
                )
            )
        assert _stream_bytes(incremental) == expect

    @settings(max_examples=15, deadline=None)
    @given(inst_rows=_instance_rows)
    def test_rejected_payload_changes_nothing(self, inst_rows):
        state = ServiceState(CONFIG)
        ids = list(range(len(inst_rows)))
        state.ingest(_payload(instances=_instances_table(inst_rows, ids)))
        before = _stream_bytes(state)
        versions = state.versions()

        # Duplicate instance ids.
        with pytest.raises(IngestError):
            state.ingest(
                _payload(instances=_instances_table(inst_rows, ids))
            )
        # Wrong schema version.
        bad = _payload(instances=_instances_table(inst_rows, ids))
        bad["schema"] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(IngestError):
            state.ingest(bad)
        # Unknown key.
        with pytest.raises(IngestError):
            state.ingest({**_payload(), "surprise": 1})

        assert state.versions() == versions
        assert _stream_bytes(state) == before


# --------------------------------------------------------------------- #
# ETag iff bytes (HTTP layer)
# --------------------------------------------------------------------- #


def _serve_synthetic():
    app = ServiceApp(CONFIG)
    server = live.serve_background(app=app)
    return app, ServiceClient("127.0.0.1", server.port)


class TestETagContract:
    def test_etag_changes_iff_bytes_change(self):
        _, client = _serve_synthetic()
        rows = [(b, i, 1, 0, 60, 0.5, "own", "US")
                for b in range(3) for i in range(4)]
        first, second = rows[:8], rows[8:]
        client.ingest(_payload(
            instances=_instances_table(first, list(range(8)))
        ))
        status, headers, body = client.get("/tables/instances")
        assert status == 200
        etag = headers["etag"]

        # A re-read serves the identical bytes under the identical ETag.
        status, headers2, body2 = client.get("/tables/instances")
        assert (headers2["etag"], body2) == (etag, body)

        # An ingest into a *different* layer leaves this route untouched.
        client.ingest(_payload(
            catalog=_catalog_table([("t", 0, True)], [0])
        ))
        status, headers3, body3 = client.get("/tables/instances")
        assert (headers3["etag"], body3) == (etag, body)

        # An ingest into *this* layer changes both bytes and ETag.
        client.ingest(_payload(
            instances=_instances_table(second, list(range(8, len(rows))))
        ))
        status, headers4, body4 = client.get("/tables/instances")
        assert status == 200
        assert body4 != body
        assert headers4["etag"] != etag

    def test_stale_etag_gets_fresh_200_current_gets_304(self):
        _, client = _serve_synthetic()
        rows = [(0, i, 1, 0, 60, 0.5, "own", "US") for i in range(4)]
        client.ingest(_payload(
            instances=_instances_table(rows[:2], [0, 1])
        ))
        _, headers, _ = client.get("/tables/instances")
        stale = headers["etag"]

        status, headers, body = client.get("/tables/instances", etag=stale)
        assert status == 304 and body == b""

        client.ingest(_payload(
            instances=_instances_table(rows[2:], [2, 3])
        ))
        status, headers, body = client.get("/tables/instances", etag=stale)
        assert status == 200 and body
        assert headers["etag"] != stale
        status, _, empty = client.get(
            "/tables/instances", etag=headers["etag"]
        )
        assert status == 304 and empty == b""

    def test_invalidation_is_exact_per_layer(self):
        """Counted cache hits prove untouched routes never re-render."""
        _, client = _serve_synthetic()
        hits = obs.counter("serve.cache_hits")
        rows = [(0, i, 1, 0, 60, 0.5, "own", "US") for i in range(4)]
        client.ingest(_payload(
            catalog=_catalog_table([("t", 0, True)], [0]),
            instances=_instances_table(rows, list(range(4))),
        ))
        client.get("/tables/instances")  # render + cache
        client.ingest(_payload(
            catalog=_catalog_table([("u", 1, False)], [1])
        ))
        before = hits.value
        status, _, _ = client.get("/tables/instances")
        assert status == 200
        assert hits.value == before + 1  # served from cache, not re-rendered


# --------------------------------------------------------------------- #
# Wire codec round trips and rejections
# --------------------------------------------------------------------- #


def _wire_round_trip(value):
    import json as json_mod

    from repro.service import codec

    return codec.decode_value(
        json_mod.loads(codec.dumps_canonical(codec.encode_value(value)))
    )


class TestWireCodec:
    def test_table_round_trips_every_legal_dtype(self):
        import json as json_mod

        from repro.service import codec

        table = Table({
            "i": np.array([1, -(2**62), 2**62], dtype=np.int64),
            "f": np.array([0.1, float("nan"), float("inf")]),
            "b": np.array([True, False, True]),
            "s": np.array(["a", "", "é"], dtype=object),
        }, copy=False)
        doc = json_mod.loads(codec.dumps_canonical(codec.encode_table(table)))
        back = codec.decode_table(doc)
        assert back.column_names == table.column_names
        for name in table.column_names:
            assert back[name].dtype == table[name].dtype
        assert table_body(back) == table_body(table)

    def test_figure_payload_round_trips_nested_values(self):
        payload = {
            "scalar": np.float64(0.25),
            "arr": np.arange(3, dtype=np.int64),
            "objarr": np.array(["x", "y"], dtype=object),
            "nested": [1, (2.5, None), {"k": True}],
            "table": Table({"a": np.array([1, 2], dtype=np.int64)}),
        }
        back = _wire_round_trip(payload)
        assert back["scalar"] == 0.25
        assert back["arr"].dtype == np.int64
        assert list(back["arr"]) == [0, 1, 2]
        assert back["objarr"].dtype == object
        assert list(back["objarr"]) == ["x", "y"]
        assert back["nested"] == [1, [2.5, None], {"k": True}]
        assert list(back["table"]["a"]) == [1, 2]

    def test_awkward_dict_keys_escape_and_restore(self):
        # Non-str keys and a key colliding with the marker both force the
        # escaped item-list form; decode must restore them exactly.
        for original in ({1: "a", 2: "b"}, {"__kind__": "x", "k": 1}):
            assert _wire_round_trip(original) == original

    def test_encode_rejects_non_wire_safe_values(self):
        from repro.service.codec import CodecError, encode_table, encode_value

        with pytest.raises(CodecError):
            encode_value(np.array([1, 2], dtype=np.int32))
        with pytest.raises(CodecError):
            encode_value({1, 2})
        from repro.service.codec import _column_tag

        with pytest.raises(CodecError):  # Table can't even hold these, so
            _column_tag("c", np.array([1 + 2j]))  # the guard is unit-level
        with pytest.raises(CodecError):
            encode_table(
                Table({"o": np.array([1, "x"], dtype=object)}, copy=False)
            )

    def test_decode_value_rejects_malformed_documents(self):
        from repro.service.codec import CodecError, decode_value

        with pytest.raises(CodecError):
            decode_value({"__kind__": "mystery"})
        with pytest.raises(CodecError):
            decode_value({"__kind__": "ndarray", "dtype": "int32",
                          "values": [1]})
        with pytest.raises(CodecError):
            decode_value(object())

    @pytest.mark.parametrize("doc", [
        "not a dict",
        {"num_rows": 1},
        {"num_rows": 1, "columns": [["a", "int64"]]},
        {"num_rows": 1, "columns": [[3, "int64", [1]]]},
        {"num_rows": 1, "columns": [["a", "int64", [1]],
                                    ["a", "int64", [2]]]},
        {"num_rows": 2, "columns": [["a", "int64", [1]]]},
        {"num_rows": 1, "columns": [["a", "object", [7]]]},
        {"num_rows": 1, "columns": [["a", "int64", ["x"]]]},
        {"num_rows": 1, "columns": [["a", "int64", [10**30]]]},
        {"num_rows": 2, "columns": [["a", "int64", [[1], [2]]]]},
        {"num_rows": 1, "columns": [["a", "int128", [1]]]},
    ])
    def test_decode_table_rejects_malformed_documents(self, doc):
        from repro.service.codec import CodecError, decode_table

        with pytest.raises(CodecError):
            decode_table(doc)


# --------------------------------------------------------------------- #
# Response cache internals (LRU bound + disk tier)
# --------------------------------------------------------------------- #


class TestResponseCache:
    def test_eviction_falls_back_to_disk_tier(self):
        from repro.service.respcache import ResponseCache

        evictions = obs.counter("serve.cache_evictions")
        hits = obs.counter("serve.cache_hits")
        cache = ResponseCache(max_bytes=150)
        body_a, body_b = b"a" * 100, b"b" * 100
        cache.put("/a", (1,), body_a, "text/plain")
        start_evictions = evictions.value
        cache.put("/b", (1,), body_b, "text/plain")
        assert evictions.value == start_evictions + 1  # /a left memory

        # Same deps: /a is still *valid*, its body comes back from the
        # content-addressed disk tier rather than being re-rendered.
        before = hits.value
        entry = cache.get("/a", (1,))
        assert entry is not None and entry.body == body_a
        assert hits.value == before + 1

    def test_disk_tier_loss_is_a_miss_not_an_error(self, tmp_path):
        from repro import cache as study_cache
        from repro.service.respcache import ResponseCache

        cache = ResponseCache(max_bytes=150)
        cache.put("/a", (1,), b"a" * 100, "text/plain")
        cache.put("/b", (1,), b"b" * 100, "text/plain")
        import shutil

        shutil.rmtree(study_cache.response_cache_dir())  # lose the disk tier
        assert cache.get("/a", (1,)) is None  # miss -> caller re-renders

    def test_stale_deps_and_clear_invalidate(self):
        from repro.service.respcache import ResponseCache

        cache = ResponseCache()
        cache.put("/a", (1,), b"body", "text/plain")
        assert cache.get("/a", (2,)) is None  # version bumped -> stale
        assert cache.get("/a", (1,)) is not None
        assert cache.entries == 1
        cache.clear()
        assert cache.entries == 0
        assert cache.get("/a", (1,)) is None
