"""Unit + property tests for the ML substrate (tree, bucketize, CV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    bucketize_by_percentile,
    bucketize_by_range,
    cross_validate,
    kfold_indices,
)


class TestDecisionTree:
    def test_learns_threshold_rule(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = (X[:, 0] > 0.25).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.98

    def test_learns_xor_with_depth(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = DecisionTreeClassifier(max_depth=5, min_samples_split=4).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_pure_node_becomes_leaf(self):
        X = np.zeros((20, 1))
        y = np.zeros(20, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.depth() == 0
        assert model.num_leaves() == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(500, 3))
        y = rng.integers(0, 5, size=500)
        model = DecisionTreeClassifier(max_depth=2, min_samples_split=2).fit(X, y)
        assert model.depth() <= 2

    def test_multiclass(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 3, size=(600, 1))
        y = np.floor(X[:, 0]).astype(int)  # 3 classes by range
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 1)))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((5, 1)), np.zeros(4, dtype=int))

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 1)), np.array([-1, 0, 1]))

    def test_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_training_accuracy_beats_majority(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=6, min_samples_split=4).fit(X, y)
        accuracy = (model.predict(X) == y).mean()
        majority = max(y.mean(), 1 - y.mean())
        assert accuracy >= majority


class TestBucketize:
    def test_range_buckets_cover(self):
        values = np.linspace(0, 100, 1000)
        b = bucketize_by_range(values)
        assert b.num_buckets == 10
        assert b.labels.min() == 0 and b.labels.max() == 9
        # Equal-width on uniform data => roughly equal counts.
        assert b.bucket_counts().min() >= 80

    def test_range_skewed_data_has_skewed_counts(self):
        values = np.random.default_rng(0).exponential(size=2000)
        b = bucketize_by_range(values)
        counts = b.bucket_counts()
        assert counts[0] > counts[5]

    def test_percentile_buckets_balanced(self):
        values = np.random.default_rng(1).exponential(size=2000)
        b = bucketize_by_percentile(values)
        counts = b.bucket_counts()
        assert counts.max() - counts.min() <= 0.05 * len(values)

    def test_percentile_with_heavy_ties(self):
        values = np.r_[np.zeros(500), np.random.default_rng(2).uniform(1, 2, 100)]
        b = bucketize_by_percentile(values)
        assert b.labels.max() <= 9
        assert b.labels.min() == 0

    def test_assign_new_values(self):
        b = bucketize_by_range(np.arange(100.0))
        assert b.assign([0.0])[0] == 0
        assert b.assign([99.0])[0] == 9
        assert b.assign([1e9])[0] == 9  # clipped into the last bucket

    def test_constant_data(self):
        b = bucketize_by_range(np.full(10, 3.0))
        assert set(b.labels.tolist()) == {0}

    def test_too_few_buckets_rejected(self):
        with pytest.raises(ValueError):
            bucketize_by_range([1.0, 2.0], num_buckets=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bucketize_by_range([])


class TestCrossVal:
    def test_kfold_covers_everything(self):
        folds = kfold_indices(53, k=5, rng=np.random.default_rng(0))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(53))
        for train, test in folds:
            assert set(train) & set(test) == set()

    def test_kfold_too_few_samples(self):
        with pytest.raises(ValueError):
            kfold_indices(3, k=5)

    def test_cv_accuracy_on_learnable_problem(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 10, size=(500, 1))
        y = np.floor(X[:, 0]).astype(int)
        result = cross_validate(
            lambda: DecisionTreeClassifier(max_depth=9),
            X, y, rng=np.random.default_rng(0),
        )
        assert result.exact_accuracy > 0.9
        assert result.within_one_accuracy >= result.exact_accuracy
        assert result.num_folds == 5

    def test_within_tolerance_definition(self):
        # Predicting bucket k for true bucket k+1 counts within-one.
        class OffByOne:
            def fit(self, X, y):
                return self

            def predict(self, X):
                return np.ones(len(X), dtype=int)

        X = np.zeros((20, 1))
        y = np.repeat([0, 2], 10)  # all |pred - true| == 1
        result = cross_validate(lambda: OffByOne(), X, y, k=2)
        assert result.exact_accuracy == 0.0
        assert result.within_one_accuracy == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            cross_validate(
                lambda: DecisionTreeClassifier(), np.zeros((5, 1)), np.zeros(4)
            )
