"""Tests for the A/B experiment harness."""

import pytest

from repro.abtest import TaskDesign, run_ab_test
from repro.taxonomy.labels import Operator


@pytest.fixture(scope="module")
def example_effect():
    base = TaskDesign(num_examples=0)
    return run_ab_test(base, base.varied(num_examples=2), num_batches=40, seed=5)


class TestTaskDesign:
    def test_defaults_valid(self):
        TaskDesign()

    def test_varied_returns_copy(self):
        base = TaskDesign()
        variant = base.varied(num_images=3)
        assert base.num_images == 0
        assert variant.num_images == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskDesign(operators=())
        with pytest.raises(ValueError):
            TaskDesign(num_items=0)
        with pytest.raises(ValueError):
            TaskDesign(num_choices=1)


class TestRunAbTest:
    def test_reports_all_metrics(self, example_effect):
        assert set(example_effect.comparisons) == {
            "disagreement", "task_time", "pickup_time"
        }

    def test_example_effect_detected(self, example_effect):
        pickup = example_effect["pickup_time"]
        assert pickup.significant
        assert pickup.median_b < pickup.median_a
        assert pickup.relative_change < -0.4

    def test_example_leaves_task_time_alone(self, example_effect):
        assert not example_effect["task_time"].significant

    def test_null_experiment_finds_nothing(self):
        """A/A experiments are clean at the nominal false-positive rate.

        Any single seed can flag at the ~1% level by design; require that at
        most one metric across three seeds flags.
        """
        base = TaskDesign()
        flags = 0
        for seed in (1, 2, 3):
            result = run_ab_test(base, base, num_batches=40, seed=seed)
            flags += sum(
                comparison.significant
                for comparison in result.comparisons.values()
            )
        assert flags <= 1

    def test_text_box_effect(self):
        base = TaskDesign(num_text_boxes=0)
        result = run_ab_test(
            base, base.varied(num_text_boxes=2), num_batches=40, seed=6
        )
        tt = result["task_time"]
        assert tt.significant and tt.median_b > 2 * tt.median_a

    def test_items_raise_pickup(self):
        base = TaskDesign(num_items=15)
        result = run_ab_test(
            base, base.varied(num_items=120), num_batches=40, seed=6
        )
        pickup = result["pickup_time"]
        assert pickup.significant and pickup.median_b > pickup.median_a

    def test_operator_change_moves_task_time(self):
        base = TaskDesign(operators=(Operator.FILTER,))
        result = run_ab_test(
            base,
            base.varied(operators=(Operator.GATHER,), num_text_boxes=1),
            num_batches=40,
            seed=6,
        )
        tt = result["task_time"]
        assert tt.significant and tt.median_b > tt.median_a

    def test_too_few_batches_rejected(self):
        with pytest.raises(ValueError):
            run_ab_test(TaskDesign(), TaskDesign(), num_batches=2)

    def test_summary_renders(self, example_effect):
        text = example_effect.summary()
        assert "pickup_time" in text and "SIGNIFICANT" in text

    def test_deterministic_in_seed(self):
        base = TaskDesign()
        a = run_ab_test(base, base.varied(num_images=2), num_batches=10, seed=9)
        b = run_ab_test(base, base.varied(num_images=2), num_batches=10, seed=9)
        assert a["pickup_time"].median_a == b["pickup_time"].median_a
        assert a["pickup_time"].t_test.p_value == b["pickup_time"].t_test.p_value
