"""Tests for :mod:`repro.obs.sampler`: resource timelines and utilization.

The sampler's clock and reader are injectable, so most tests drive
:meth:`ResourceSampler.sample_once` with a fake clock and scripted
readings — fully deterministic, no thread, no sleeps.  The thread
lifecycle tests use a real daemon thread but a scripted reader, so they
assert behavior (shutdown on error, timeline shape), never timing.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics, sampler


@pytest.fixture(autouse=True)
def _sampler_off(monkeypatch):
    monkeypatch.delenv(sampler.SAMPLE_MS_ENV, raising=False)
    yield
    sampler.stop()  # tears down any global sampler a test leaked
    sampler.drain_intervals()


class _FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


def _scripted_reader(readings):
    it = iter(readings)

    def read():
        return next(it)

    return read


# --------------------------------------------------------------------- #
# Deterministic sampling
# --------------------------------------------------------------------- #


class TestSampleOnce:
    def test_timeline_from_fake_clock_and_reader(self):
        clock = _FakeClock()
        s = sampler.ResourceSampler(
            interval_ms=100.0,
            clock=clock,
            reader=_scripted_reader([
                (50.0, 1.0, 8, 0.0),
                (110.0, 1.5, 9, 2.5),
                (90.0, 2.5, 8, 2.5),
            ]),
        )
        for _ in range(3):
            s.sample_once()
            clock.now += 1.0
        timeline = s.timeline()
        assert timeline["schema"] == sampler.TIMELINE_SCHEMA_VERSION
        assert timeline["num_samples"] == 3
        assert [x["t_s"] for x in timeline["samples"]] == [0.0, 1.0, 2.0]
        assert timeline["peak_rss_mb"] == 110.0
        assert timeline["max_open_fds"] == 9
        assert timeline["max_spill_mb"] == 2.5
        assert timeline["error"] is None

    def test_cpu_pct_is_delta_based_and_skips_first_sample(self):
        clock = _FakeClock()
        s = sampler.ResourceSampler(
            interval_ms=100.0,
            clock=clock,
            reader=_scripted_reader([
                (10.0, 1.0, 1, 0.0),
                (10.0, 1.5, 1, 0.0),  # 0.5 cpu-s over 1 s -> 50%
                (10.0, 2.5, 1, 0.0),  # 1.0 cpu-s over 1 s -> 100%
            ]),
        )
        for _ in range(3):
            s.sample_once()
            clock.now += 1.0
        timeline = s.timeline()
        cpu = [x["cpu_pct"] for x in timeline["samples"]]
        assert cpu == [0.0, 50.0, 100.0]
        # The first sample has no delta, so it never drags the mean down.
        assert timeline["mean_cpu_pct"] == 75.0

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            sampler.ResourceSampler(interval_ms=0.0)

    def test_default_reader_runs_on_this_platform(self):
        rss_mb, cpu_s, fds, spill_mb = sampler.default_reader()
        assert rss_mb >= 0.0 and cpu_s >= 0.0
        assert fds >= 0 and spill_mb >= 0.0
        assert sampler.peak_rss_mb() >= rss_mb * 0.5  # same units, sane


# --------------------------------------------------------------------- #
# Thread lifecycle
# --------------------------------------------------------------------- #


class TestThread:
    def test_start_stop_produces_timeline(self):
        s = sampler.ResourceSampler(interval_ms=5.0)
        s.start()
        assert s.running
        threading.Event().wait(0.05)
        timeline = s.stop()
        assert not s.running
        assert timeline["num_samples"] >= 2  # initial + final at minimum
        assert timeline["error"] is None
        assert timeline["peak_rss_mb"] > 0.0

    def test_thread_shuts_down_when_reader_raises(self):
        readings = [(1.0, 1.0, 1, 0.0)] * 3

        def reader():
            if readings:
                return readings.pop()
            raise OSError("proc went away")

        before = metrics.REGISTRY.counter_values().get("sampler.errors", 0)
        s = sampler.ResourceSampler(interval_ms=2.0, reader=reader)
        s.start()
        for _ in range(100):
            if not s.running:
                break
            threading.Event().wait(0.01)
        assert not s.running  # exited on its own, not via stop()
        timeline = s.stop()
        assert "OSError" in timeline["error"]
        assert timeline["num_samples"] == 3  # the good readings survive
        assert metrics.REGISTRY.counter_values()["sampler.errors"] == before + 1

    def test_start_is_idempotent(self):
        s = sampler.ResourceSampler(interval_ms=50.0)
        assert s.start() is s
        thread = s._thread
        assert s.start() is s
        assert s._thread is thread
        s.stop()


# --------------------------------------------------------------------- #
# Interval resolution and the global lifecycle
# --------------------------------------------------------------------- #


class TestIntervalResolution:
    def test_explicit_wins_and_gates_on_positive(self, monkeypatch):
        monkeypatch.setenv(sampler.SAMPLE_MS_ENV, "25")
        assert sampler.sample_interval_ms(10.0) == 10.0
        assert sampler.sample_interval_ms(0.0) is None
        assert sampler.sample_interval_ms(None) == 25.0

    def test_env_parsing(self, monkeypatch):
        assert sampler.sample_interval_ms(None) is None
        monkeypatch.setenv(sampler.SAMPLE_MS_ENV, "garbage")
        assert sampler.sample_interval_ms(None) is None
        monkeypatch.setenv(sampler.SAMPLE_MS_ENV, "-5")
        assert sampler.sample_interval_ms(None) is None
        monkeypatch.setenv(sampler.SAMPLE_MS_ENV, "12.5")
        assert sampler.sample_interval_ms(None) == 12.5

    def test_global_lifecycle_collects_intervals(self):
        assert sampler.start(None) is None  # sampling off -> no sampler
        sampler.note_interval(1, 0.0, 1.0, "dropped")  # off -> no-op
        assert sampler.drain_intervals() == []

        active = sampler.start(50.0)
        assert active is not None
        assert sampler.start(50.0) is active  # idempotent
        sampler.note_interval(11, 5.0, 6.0, "shard 0")
        timeline = sampler.stop()
        assert sampler.active() is None
        assert [iv["label"] for iv in timeline["worker_intervals"]] == [
            "shard 0"
        ]
        assert sampler.stop() is None


# --------------------------------------------------------------------- #
# Utilization folding
# --------------------------------------------------------------------- #


def _span(name, pid, start_s, wall_s, **attrs):
    return {
        "name": name, "pid": pid, "start_s": start_s, "wall_s": wall_s,
        "attrs": attrs,
    }


class TestUtilization:
    def test_from_trace_prefers_shard_builds_over_chunks(self):
        doc = {"spans": [
            _span("shard.build", 10, 0.0, 2.0, shard=0),
            _span("shard.build", 11, 0.5, 1.5, shard=1),
            _span("parallel.chunk", 10, 0.0, 0.1),
        ]}
        util = sampler.utilization_from_trace(doc)
        assert util["num_workers"] == 2
        assert util["span_s"] == 2.0
        # 2.0 + 1.5 busy over 2 workers x 2 s.
        assert util["value"] == pytest.approx(3.5 / 4.0)
        labels = [
            iv["label"] for w in util["workers"] for iv in w["intervals"]
        ]
        assert labels == ["shard 0", "shard 1"]

    def test_from_trace_without_worker_spans_is_none(self):
        assert sampler.utilization_from_trace({"spans": []}) is None
        assert (
            sampler.utilization_from_trace(
                {"spans": [_span("simulate", 1, 0.0, 1.0)]}
            )
            is None
        )

    def test_from_intervals_rebases_to_earliest_start(self):
        util = sampler.utilization_from_intervals([
            {"pid": 7, "t0": 1000.0, "t1": 1001.0, "label": "a"},
            {"pid": 8, "t0": 1000.5, "t1": 1002.0, "label": "b"},
        ])
        assert util["num_workers"] == 2
        first = util["workers"][0]["intervals"][0]
        assert first["start_s"] == 0.0 and first["end_s"] == 1.0
        assert util["span_s"] == 2.0
        assert sampler.utilization_from_intervals([]) is None

    def test_value_capped_at_one(self):
        # Overlapping intervals on one pid cannot report > 100%.
        util = sampler.utilization_from_intervals([
            {"pid": 1, "t0": 0.0, "t1": 1.0, "label": ""},
            {"pid": 1, "t0": 0.0, "t1": 1.0, "label": ""},
        ])
        assert util["value"] == 1.0


# --------------------------------------------------------------------- #
# Byte-identity: sampling must not change study bytes
# --------------------------------------------------------------------- #


def test_sampled_study_build_is_byte_identical(tmp_path, monkeypatch):
    from repro import build_study
    from repro.tables.io import write_csv

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def snapshot(out):
        study = build_study("tiny", seed=7, cache=False)
        write_csv(study.enriched.cluster_table, out)
        return out.read_bytes()

    clean = snapshot(tmp_path / "clean.csv")
    sampler.start(5.0)
    try:
        sampled = snapshot(tmp_path / "sampled.csv")
    finally:
        timeline = sampler.stop()
    assert sampled == clean
    assert timeline["num_samples"] >= 2
