"""Tests for §4 task-design analyses on the tiny study."""

import numpy as np
import pytest

from repro.analysis import taskdesign as td


class TestAnalysisClusters:
    def test_prune_rule_applied_for_disagreement(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="disagreement")
        assert np.all(clusters["disagreement"] <= td.DISAGREEMENT_PRUNE_THRESHOLD)

    def test_no_prune_for_time_metrics(self, enriched):
        all_clusters = enriched.cluster_table
        kept = td.analysis_clusters(enriched, metric="task_time")
        # Only label/NaN filtering, no pruning above 0.5.
        labeled = sum(1 for g in all_clusters["goals"] if g)
        assert kept.num_rows <= labeled

    def test_unknown_metric(self, enriched):
        with pytest.raises(ValueError):
            td.analysis_clusters(enriched, metric="happiness")

    def test_subjective_tasks_actually_pruned(self, study):
        """Clusters from subjective tasks exceed 0.5 and get dropped."""
        state = study.state
        subjective_tasks = set(np.flatnonzero(state.tasks.subjective))
        sampled_subjective = {
            study.enriched.cluster_of_batch[b]
            for b in study.released.batch_html
            if int(state.batches.task_idx[b]) in subjective_tasks
        }
        if not sampled_subjective:
            pytest.skip("no subjective clusters sampled at this seed")
        kept = set(
            int(c)
            for c in td.analysis_clusters(enriched=study.enriched, metric="disagreement")["cluster_id"]
        )
        assert not (sampled_subjective & kept)


class TestBinComparison:
    def test_median_split_balances_bins(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        c = td.bin_comparison(clusters, "num_words", "task_time")
        assert abs(c.count_low - c.count_high) <= clusters.num_rows * 0.4

    def test_zero_split_for_examples(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="pickup_time")
        try:
            c = td.bin_comparison(clusters, "num_examples", "pickup_time")
        except ValueError:
            pytest.skip("too few example clusters sampled at this seed")
        assert c.threshold == 0.0
        assert "= 0 vs > 0" in c.split_description

    def test_unknown_feature(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        with pytest.raises(ValueError):
            td.bin_comparison(clusters, "num_buttons", "task_time")

    def test_direction_labels(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        c = td.bin_comparison(clusters, "num_text_boxes", "task_time")
        # Text boxes increase task time => low bin better.
        assert c.direction == "low_better"

    def test_cdfs_built_from_bins(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        c = td.bin_comparison(clusters, "num_items", "task_time")
        assert c.cdf_low.sample_size == c.count_low
        assert c.cdf_high.sample_size == c.count_high


class TestPaperEffects:
    """Direction checks for the paper's headline effects (tiny scale, so we
    assert medians, not significance)."""

    def test_words_reduce_disagreement(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="disagreement")
        c = td.bin_comparison(clusters, "num_words", "disagreement")
        assert c.median_high < c.median_low

    def test_text_boxes_increase_disagreement(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="disagreement")
        c = td.bin_comparison(clusters, "num_text_boxes", "disagreement")
        assert c.median_high > c.median_low

    def test_text_boxes_increase_task_time(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        c = td.bin_comparison(clusters, "num_text_boxes", "task_time")
        assert c.median_high > c.median_low

    def test_items_reduce_task_time(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="task_time")
        c = td.bin_comparison(clusters, "num_items", "task_time")
        assert c.median_high < c.median_low

    def test_images_reduce_pickup_time(self, enriched):
        clusters = td.analysis_clusters(enriched, metric="pickup_time")
        c = td.bin_comparison(clusters, "num_images", "pickup_time")
        assert c.median_high < c.median_low

    def test_run_all_experiments_count(self, enriched):
        experiments = td.run_all_experiments(enriched)
        # Degenerate splits may drop a few pairs at tiny scale.
        assert 9 <= len(experiments) <= len(td.METRICS) * len(td.FEATURES)


class TestLatency:
    def test_pickup_dominates(self, enriched):
        d = td.latency_decomposition(enriched)
        assert d.pickup_dominance_ratio > 5
        assert len(d.end_to_end) == enriched.batch_table.num_rows

    def test_end_to_end_is_sum(self, enriched):
        d = td.latency_decomposition(enriched)
        assert np.allclose(d.end_to_end, d.pickup_time + d.task_time)


class TestSummaryTables:
    def test_only_significant_rows(self, enriched):
        for metric in td.METRICS:
            for row in td.summary_table(enriched, metric):
                assert row.significant

    def test_drilldown_requires_enough_clusters(self, enriched):
        with pytest.raises(ValueError):
            td.drilldown(
                enriched,
                feature="num_words",
                metric="disagreement",
                category="goals",
                label="NO_SUCH_LABEL",
            )
