"""Tests for the calibration-validation checklist."""

import dataclasses

import pytest

from repro.validation import ValidationCheck, validate_study


class TestValidationCheck:
    def test_ok_inside_band(self):
        check = ValidationCheck("x", 1.0, 0.9, 0.5, 1.5)
        assert check.ok

    def test_fail_outside_band(self):
        check = ValidationCheck("x", 1.0, 2.0, 0.5, 1.5)
        assert not check.ok

    def test_render_contains_status(self):
        assert "PASS" in ValidationCheck("x", 1.0, 1.0, 0.5, 1.5).render()
        assert "FAIL" in ValidationCheck("x", 1.0, 9.0, 0.5, 1.5).render()


class TestValidateStudy:
    def test_headline_checks_pass_on_default_world(self, study):
        """The default calibration passes everything except (possibly) the
        small-sample effect-direction checks at tiny scale."""
        report = validate_study(study)
        headline = [c for c in report.checks if not c.name.startswith("effect")]
        failing = [c for c in headline if not c.ok]
        assert not failing, [c.render() for c in failing]

    def test_most_effects_reproduce_even_at_tiny(self, study):
        report = validate_study(study)
        effects = [c for c in report.checks if c.name.startswith("effect")]
        assert sum(c.ok for c in effects) >= len(effects) - 2

    def test_render_ends_with_verdict(self, study):
        report = validate_study(study)
        assert report.render().splitlines()[-1].endswith(
            ("PASS", "FAIL", "CHECK(S) FAIL")
        )

    def test_broken_world_fails(self):
        """Inverting an effect makes its check fail."""
        from repro import build_study
        from repro.simulator.config import Calibration, SimulationConfig
        from repro.simulator.engine import simulate_marketplace
        from repro.dataset.release import release_dataset
        from repro.enrichment.pipeline import enrich_dataset
        from repro.figures.suite import FigureSuite
        from repro.study import Study

        config = dataclasses.replace(
            SimulationConfig.preset("tiny", seed=13),
            calibration=Calibration(
                # Invert: text boxes now REDUCE task time strongly.
                task_time_text_box_factor=0.3,
            ),
        )
        state = simulate_marketplace(config)
        released = release_dataset(state, config)
        enriched = enrich_dataset(released, config)
        study = Study(
            config=config, state=state, released=released, enriched=enriched,
            figures=FigureSuite(state=state, released=released, enriched=enriched),
        )
        report = validate_study(study)
        broken = next(
            c for c in report.checks
            if c.name.startswith("effect num_text_boxes->task_time")
        )
        assert not broken.ok
