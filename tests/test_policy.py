"""Tests for marketplace-policy experiments."""

import pytest

from repro.policy import run_policy_experiment
from repro.simulator.config import SimulationConfig


@pytest.fixture(scope="module")
def outcomes():
    base = SimulationConfig.preset("tiny", seed=7)
    return run_policy_experiment(
        {
            "bigger dedicated core": {
                "engagement_mix": (0.44, 0.36, 0.08, 0.12),
            },
            "more casual labor": {
                "casual_share_target": 0.45,
                "casual_volume_cap": 0.8,
            },
        },
        base=base,
    )


class TestPolicyExperiment:
    def test_baseline_included(self, outcomes):
        assert outcomes[0].name == "baseline"
        assert len(outcomes) == 3

    def test_metrics_populated(self, outcomes):
        for outcome in outcomes:
            assert outcome.median_pickup_seconds > 0
            assert outcome.p90_pickup_seconds >= outcome.median_pickup_seconds
            assert outcome.mean_weekly_active_workers > 0
            assert 0 < outcome.top10_task_share <= 1

    def test_more_casual_labor_spreads_work(self, outcomes):
        baseline = outcomes[0]
        casual = next(o for o in outcomes if o.name == "more casual labor")
        assert casual.top10_task_share < baseline.top10_task_share

    def test_as_dict_round(self, outcomes):
        d = outcomes[0].as_dict()
        assert d["policy"] == "baseline"
        assert set(d) == {
            "policy", "median_pickup_s", "p90_pickup_s",
            "weekly_active_workers", "top10_task_share", "one_day_task_share",
        }

    def test_no_baseline_option(self):
        base = SimulationConfig.preset("tiny", seed=3)
        outcomes = run_policy_experiment({}, base=base, include_baseline=False)
        assert outcomes == []
