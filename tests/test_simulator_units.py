"""Unit tests for the simulator's component generators."""

import numpy as np
import pytest

from repro.simulator.answers import (
    choice_strings,
    draw_answers,
    expected_disagreement,
    modal_probability_for_disagreement,
)
from repro.simulator.arrivals import WEEKDAY_WEIGHTS, market_envelope
from repro.simulator.config import Calibration, SimulationConfig
from repro.simulator.geography import COUNTRIES, COUNTRY_WEIGHTS, sample_countries
from repro.simulator.rng import StreamFactory
from repro.simulator.sources import SOURCE_NAMES, generate_sources
from repro.simulator.workers import ONE_DAY, POWER, generate_workers
from repro.simulator.tasks import generate_tasks


@pytest.fixture(scope="module")
def streams():
    return StreamFactory(42)


@pytest.fixture(scope="module")
def config():
    return SimulationConfig.preset("tiny", seed=42)


@pytest.fixture(scope="module")
def envelope(config, streams):
    return market_envelope(config, streams)


class TestConfig:
    def test_presets_exist(self):
        for scale in ("tiny", "small", "medium", "large"):
            cfg = SimulationConfig.preset(scale)
            assert cfg.num_distinct_tasks > 0

    def test_preset_names_round_trip(self):
        # Every advertised name constructs, and nothing constructible is
        # unadvertised: the error message derives from the same registry.
        from repro.simulator.config import preset_names

        assert preset_names() == sorted(preset_names())
        for scale in preset_names():
            assert SimulationConfig.preset(scale).num_workers > 0
        with pytest.raises(ValueError) as err:
            SimulationConfig.preset("galactic")
        for scale in preset_names():
            assert scale in str(err.value)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown scale"):
            SimulationConfig.preset("galactic")

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_distinct_tasks=0)
        with pytest.raises(ValueError):
            SimulationConfig(num_workers=5)
        with pytest.raises(ValueError):
            SimulationConfig(batch_sample_prob=0.0)

    def test_with_seed(self):
        cfg = SimulationConfig.preset("tiny").with_seed(99)
        assert cfg.seed == 99

    def test_calibration_validation(self):
        with pytest.raises(ValueError, match="engagement_mix"):
            Calibration(engagement_mix=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ValueError, match="subjective"):
            Calibration(subjective_disagreement_range=(0.2, 0.9))


class TestStreams:
    def test_deterministic(self):
        a = StreamFactory(1).stream("tasks").random(5)
        b = StreamFactory(1).stream("tasks").random(5)
        assert np.array_equal(a, b)

    def test_stage_independence(self):
        a = StreamFactory(1).stream("tasks").random(5)
        b = StreamFactory(1).stream("workers").random(5)
        assert not np.array_equal(a, b)

    def test_seed_changes_streams(self):
        a = StreamFactory(1).stream("tasks").random(5)
        b = StreamFactory(2).stream("tasks").random(5)
        assert not np.array_equal(a, b)


class TestSources:
    def test_exactly_139_sources(self):
        assert len(SOURCE_NAMES) == 139
        assert len(set(SOURCE_NAMES)) == 139

    def test_paper_named_sources_present(self):
        for name in ("neodev", "clixsense", "amt", "internal", "imerit_india",
                     "yute_jamaica", "ojooo", "fsprizes"):
            assert name in SOURCE_NAMES

    def test_shares_sum_to_one(self, streams):
        pool = generate_sources(streams)
        assert pool.worker_share.sum() == pytest.approx(1.0)

    def test_top10_share_near_86_percent(self, streams):
        pool = generate_sources(streams)
        top10 = np.sort(pool.worker_share)[::-1][:10]
        assert 0.80 <= top10.sum() <= 0.90

    def test_amt_is_slow_and_untrusted(self, streams):
        pool = generate_sources(streams)
        amt = pool.index_of("amt")
        assert pool.speed_factor[amt] > 5.0
        assert pool.mean_trust[amt] == pytest.approx(0.75)

    def test_three_sources_slower_than_10x(self, streams):
        pool = generate_sources(streams)
        assert (pool.speed_factor >= 10).sum() >= 3

    def test_about_10pct_sources_low_trust(self, streams):
        pool = generate_sources(streams)
        fraction = (pool.mean_trust < 0.8).mean()
        assert 0.05 <= fraction <= 0.15

    def test_index_of_unknown(self, streams):
        with pytest.raises(KeyError):
            generate_sources(streams).index_of("nope")


class TestGeography:
    def test_148_countries(self):
        assert len(COUNTRIES) == 148
        assert COUNTRY_WEIGHTS.sum() == pytest.approx(1.0)

    def test_us_is_biggest(self):
        assert COUNTRIES[int(np.argmax(COUNTRY_WEIGHTS))] == "United States"

    def test_sampling_distribution(self):
        rng = np.random.default_rng(0)
        sample = sample_countries(rng, 20000)
        us_share = (sample == "United States").mean()
        assert 0.27 <= us_share <= 0.34

    def test_home_bias(self):
        rng = np.random.default_rng(0)
        sample = sample_countries(rng, 1000, home_country="India", home_bias=0.9)
        assert (sample == "India").mean() > 0.85


class TestEnvelope:
    def test_regime_switch_visible(self, config, envelope):
        pre = envelope[: config.regime_switch_week].mean()
        post = envelope[config.regime_switch_week:].mean()
        assert post > 10 * pre

    def test_length(self, config, envelope):
        assert len(envelope) == config.num_weeks

    def test_weekday_weights_shape(self):
        assert len(WEEKDAY_WEIGHTS) == 7
        assert WEEKDAY_WEIGHTS[0] == WEEKDAY_WEIGHTS.max()  # Monday peak
        assert WEEKDAY_WEIGHTS[5:].max() < WEEKDAY_WEIGHTS[:5].min()  # weekend dip


class TestWorkers:
    @pytest.fixture(scope="class")
    def pool(self, config, envelope):
        streams = StreamFactory(config.seed)
        return generate_workers(config, generate_sources(streams), envelope, streams)

    def test_population_size(self, pool, config):
        assert pool.num_workers == config.num_workers

    def test_one_day_windows_are_one_day(self, pool):
        mask = pool.engagement == ONE_DAY
        assert np.all(pool.start_day[mask] == pool.end_day[mask])

    def test_windows_inside_calendar(self, pool, config):
        horizon = config.num_weeks * 7
        assert np.all(pool.start_day >= 0)
        assert np.all(pool.end_day < horizon)
        assert np.all(pool.end_day >= pool.start_day)

    def test_accuracy_in_unit_interval(self, pool):
        assert np.all((pool.accuracy > 0) & (pool.accuracy < 1))

    def test_availability_rate_respects_days_per_week(self, pool):
        # A power worker with a long window should be available on roughly
        # days_per_week/7 of their window days.
        candidates = np.flatnonzero(
            (pool.engagement == POWER)
            & (pool.end_day - pool.start_day > 400)
        )
        worker = int(candidates[0])
        window = range(int(pool.start_day[worker]), int(pool.end_day[worker]) + 1)
        available = sum(bool(pool.available_on_day(d)[worker]) for d in window)
        expected = pool.days_per_week[worker] / 7 * len(window)
        assert abs(available - expected) < 0.25 * len(window)

    def test_not_available_outside_window(self, pool):
        worker = 0
        before = int(pool.start_day[worker]) - 1
        if before >= 0:
            assert not pool.available_on_day(before)[worker]

    def test_engagement_mix_roughly_matches(self, pool, config):
        observed = np.bincount(pool.engagement, minlength=4) / pool.num_workers
        expected = np.asarray(config.calibration.engagement_mix)
        # Dedicated-source promotion shifts a little mass into POWER.
        assert np.all(np.abs(observed - expected) < 0.08)


class TestTasks:
    @pytest.fixture(scope="class")
    def tasks(self, config, envelope):
        return generate_tasks(config, envelope, StreamFactory(config.seed))

    def test_population_size(self, tasks, config):
        assert tasks.num_tasks == config.num_distinct_tasks

    def test_labels_well_formed(self, tasks):
        for i in range(tasks.num_tasks):
            assert len(tasks.operators[i]) >= 1
            assert len(tasks.data_types[i]) >= 1
            assert len(set(tasks.operators[i])) == len(tasks.operators[i])

    def test_windows_inside_calendar(self, tasks, config):
        assert np.all(tasks.start_week >= 0)
        assert np.all(tasks.start_week + tasks.duration_weeks <= config.num_weeks)

    def test_subjective_only_with_text_boxes(self, tasks):
        assert np.all(~tasks.subjective | (tasks.num_text_boxes > 0))

    def test_target_disagreement_range(self, tasks):
        objective = ~tasks.subjective
        assert np.all(tasks.target_disagreement[objective] <= 0.45)
        assert np.all(tasks.target_disagreement[tasks.subjective] >= 0.55)

    def test_cluster_sizes_have_heavy_hitters(self, tasks):
        assert tasks.cluster_size.max() >= 100
        assert np.median(tasks.cluster_size) <= 10

    def test_choices_at_least_two(self, tasks):
        assert tasks.num_choices.min() >= 2


class TestAnswerModel:
    def test_disagreement_inversion_round_trip(self):
        targets = np.array([0.01, 0.1, 0.2, 0.4])
        for m in (2, 3, 5):
            q = modal_probability_for_disagreement(targets, m)
            back = expected_disagreement(q, m)
            assert np.allclose(back, targets, atol=1e-9)

    def test_target_above_max_clamped(self):
        q = modal_probability_for_disagreement(np.array([0.99]), 2)
        # For m=2 max disagreement is 0.5 at q=0.5.
        assert q[0] == pytest.approx(0.5, abs=1e-3)

    def test_bad_choices_rejected(self):
        with pytest.raises(ValueError):
            modal_probability_for_disagreement(np.array([0.1]), 1)

    def test_draw_answers_mostly_correct_at_high_q(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 4, size=5000)
        answers = draw_answers(rng, np.full(5000, 0.95), true, 4)
        assert (answers == true).mean() == pytest.approx(0.95, abs=0.02)

    def test_draw_answers_wrong_are_valid_choices(self):
        rng = np.random.default_rng(0)
        true = np.zeros(1000, dtype=np.int64)
        answers = draw_answers(rng, np.zeros(1000), true, 3)
        assert set(np.unique(answers)) <= {0, 1, 2}
        assert not (answers == 0).any()  # q=0 means never the modal answer

    def test_realized_disagreement_matches_target(self):
        # End-to-end: draw many items and verify mean pairwise disagreement.
        rng = np.random.default_rng(1)
        m, replicas, items = 4, 5, 3000
        target = 0.18
        q = float(modal_probability_for_disagreement(target, m)[0])
        true = np.repeat(rng.integers(0, m, size=items), replicas)
        answers = draw_answers(rng, np.full(items * replicas, q), true, m)
        answers = answers.reshape(items, replicas)
        disagreements = []
        for row in answers:
            pairs = same = 0
            for i in range(replicas):
                for j in range(i + 1, replicas):
                    pairs += 1
                    same += row[i] == row[j]
            disagreements.append(1 - same / pairs)
        assert np.mean(disagreements) == pytest.approx(target, abs=0.02)

    def test_choice_strings(self):
        assert choice_strings(0, 2, textual=False) == ["yes", "no"]
        assert len(choice_strings(3, 5, textual=True)) == 5
        assert choice_strings(3, 4, textual=True)[0].startswith("task3")
