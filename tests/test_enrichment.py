"""Tests for the enrichment pipeline: clustering, metrics, labels, design."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enrichment.clustering import (
    cluster_batches,
    jaccard,
    minhash_signature,
    shingles,
)
from repro.enrichment.labels import read_labels_from_html, split_labels
from repro.enrichment.metrics import _pair_disagreement_by_item
from repro.htmlgen import render_task_html
from repro.taxonomy.labels import DataType, Goal, Operator


def _html(salt: int, words: int = 300, token: str = "unit-1") -> str:
    return render_task_html(
        title="Judge query-document match",
        goals=(Goal.SEARCH_RELEVANCE,),
        operators=(Operator.RATE,),
        data_types=(DataType.WEBPAGE,),
        num_words=words,
        num_text_boxes=0,
        num_examples=1,
        num_images=0,
        num_choices=5,
        template_salt=salt,
        item_token=token,
    )


class TestShingles:
    def test_identical_html_identical_shingles(self):
        assert shingles(_html(1)) == shingles(_html(1))

    def test_unit_tokens_stripped(self):
        assert shingles(_html(1, token="unit-123")) == shingles(
            _html(1, token="unit-999")
        )

    def test_different_templates_differ(self):
        a, b = shingles(_html(1)), shingles(_html(2))
        assert jaccard(a, b) < 0.9

    def test_jaccard_bounds(self):
        a, b = shingles(_html(1)), shingles(_html(2))
        assert 0.0 <= jaccard(a, b) <= 1.0
        assert jaccard(a, a) == 1.0

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 1.0


class TestMinhash:
    def test_signature_deterministic(self):
        s = shingles(_html(3))
        assert np.array_equal(minhash_signature(s), minhash_signature(s))

    def test_signature_length(self):
        assert len(minhash_signature({1, 2, 3}, num_perm=32)) == 32

    def test_empty_set_signature(self):
        sig = minhash_signature(set())
        assert np.all(sig == np.iinfo(np.uint64).max)

    @given(st.sets(st.integers(0, 2**40), min_size=5, max_size=200),
           st.sets(st.integers(0, 2**40), min_size=5, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_signature_agreement_estimates_jaccard(self, a, b):
        sig_a = minhash_signature(a, num_perm=128)
        sig_b = minhash_signature(b, num_perm=128)
        estimate = float(np.mean(sig_a == sig_b))
        truth = jaccard(a, b)
        assert abs(estimate - truth) < 0.25


class TestClustering:
    def test_recovers_task_identity(self):
        html = {}
        batch = 0
        for salt in (11, 22, 33):
            for _ in range(4):
                html[batch] = _html(salt, token=f"unit-{batch}")
                batch += 1
        clusters = cluster_batches(html)
        # Batches 0-3 together, 4-7 together, 8-11 together.
        assert len(set(clusters.values())) == 3
        for base in (0, 4, 8):
            assert len({clusters[base + i] for i in range(4)}) == 1

    def test_singleton(self):
        clusters = cluster_batches({5: _html(1)})
        assert clusters == {5: 0}

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cluster_batches({0: "<p>x</p>"}, threshold=0.0)

    def test_band_validation(self):
        with pytest.raises(ValueError):
            cluster_batches({0: "<p>x</p>"}, num_perm=64, bands=7)

    def test_near_duplicates_merge(self):
        base = _html(7)
        variant = base.replace("</body>", "<p>batch revision 3 posted</p></body>")
        clusters = cluster_batches({0: base, 1: variant})
        assert clusters[0] == clusters[1]

    def test_cluster_ids_dense(self):
        html = {i: _html(i) for i in range(5)}
        clusters = cluster_batches(html)
        assert set(clusters.values()) == set(range(len(set(clusters.values()))))


class TestDisagreementComputation:
    def test_perfect_agreement(self):
        items = np.array([0, 0, 0, 1, 1])
        responses = np.array(["a", "a", "a", "b", "b"], dtype=object)
        ids, d = _pair_disagreement_by_item(items, responses)
        assert np.allclose(d, [0.0, 0.0])

    def test_total_disagreement(self):
        items = np.array([0, 0, 0])
        responses = np.array(["a", "b", "c"], dtype=object)
        _, d = _pair_disagreement_by_item(items, responses)
        assert d[0] == pytest.approx(1.0)

    def test_partial(self):
        # 2 of 3 agree: same pairs = 1 of 3 -> disagreement 2/3.
        items = np.array([0, 0, 0])
        responses = np.array(["a", "a", "b"], dtype=object)
        _, d = _pair_disagreement_by_item(items, responses)
        assert d[0] == pytest.approx(2 / 3)

    def test_single_answer_is_nan(self):
        items = np.array([0])
        responses = np.array(["a"], dtype=object)
        _, d = _pair_disagreement_by_item(items, responses)
        assert np.isnan(d[0])

    @given(st.lists(st.sampled_from("abc"), min_size=2, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, answers):
        items = np.zeros(len(answers), dtype=np.int64)
        responses = np.array(answers, dtype=object)
        _, d = _pair_disagreement_by_item(items, responses)
        n = len(answers)
        disagreements = [
            answers[i] != answers[j] for i in range(n) for j in range(i + 1, n)
        ]
        assert d[0] == pytest.approx(np.mean(disagreements))


class TestAnnotation:
    def test_reads_labels_from_rendered_html(self):
        html = render_task_html(
            title="Transcribe receipts",
            goals=(Goal.TRANSCRIPTION,),
            operators=(Operator.EXTRACT, Operator.TAG),
            data_types=(DataType.IMAGE, DataType.AUDIO),
            num_words=300,
            num_text_boxes=1,
            num_examples=0,
            num_images=1,
            num_choices=3,
            template_salt=5,
            item_token="unit-9",
        )
        goals, operators, data_types = read_labels_from_html(html)
        assert goals == [Goal.TRANSCRIPTION]
        assert set(operators) == {Operator.EXTRACT, Operator.TAG}
        assert set(data_types) == {DataType.IMAGE, DataType.AUDIO}

    def test_split_labels_round_trip(self):
        assert split_labels("Filt+Rate") == ["Filt", "Rate"]
        assert split_labels("") == []


class TestPipelineOutputs:
    def test_cluster_count_matches_truth(self, study):
        sampled_tasks = {
            int(study.state.batches.task_idx[b]) for b in study.released.batch_html
        }
        assert study.enriched.num_clusters == len(sampled_tasks)

    def test_clustering_matches_ground_truth_partition(self, study):
        """Every cluster maps 1:1 onto a true distinct task."""
        truth = {}
        for batch_id, cluster in study.enriched.cluster_of_batch.items():
            task = int(study.state.batches.task_idx[batch_id])
            if cluster in truth:
                assert truth[cluster] == task
            else:
                truth[cluster] = task

    def test_batch_table_covers_all_sampled(self, study):
        assert study.enriched.batch_table.num_rows == len(study.released.batch_html)

    def test_design_features_match_ground_truth(self, study):
        bt = study.enriched.batch_table
        tasks = study.state.tasks
        task_of = {
            int(b): int(study.state.batches.task_idx[b])
            for b in study.released.batch_html
        }
        for i in range(min(bt.num_rows, 200)):
            row = bt.row(i)
            t = task_of[row["batch_id"]]
            assert row["num_text_boxes"] == tasks.num_text_boxes[t]
            assert row["num_examples"] == tasks.num_examples[t]
            assert row["num_images"] == tasks.num_images[t]

    def test_metrics_have_expected_columns(self, study):
        for col in ("disagreement", "task_time", "pickup_time", "num_items"):
            assert col in study.enriched.batch_table

    def test_cluster_labels_mostly_correct(self, study):
        """The two-annotator pipeline recovers primary goals almost always."""
        ct = study.enriched.cluster_table
        correct = 0
        total = 0
        for batch_id, cluster in study.enriched.cluster_of_batch.items():
            task = int(study.state.batches.task_idx[batch_id])
            truth = study.state.tasks.goal[task].value
            row_idx = np.flatnonzero(ct["cluster_id"] == cluster)
            observed = ct["primary_goal"][row_idx[0]]
            total += 1
            correct += observed == truth
        assert correct / total > 0.9
