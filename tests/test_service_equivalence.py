"""Differential harness: incremental service vs one-shot batch study.

The service's contract (see :mod:`repro.service`) mirrors the shard
layer's: for any number of micro-batches K, any assignment of rows to
micro-batches, and any arrival order, every byte the service serves —
released tables, streaming aggregates, enriched tables, figures, fidelity
probes — must equal what a monolithic batch build produces.  These tests
ingest over a **real HTTP socket** (the production path through
``ThreadingHTTPServer`` → ``ServiceApp`` → ``ServiceState``) and compare
response bodies against bytes rendered locally from the batch study with
the very same pure functions the server uses, so any divergence is in the
incremental fold, not the formatter.

Pinned here: K ∈ {1, 3, 7} with shuffled row assignment *and* shuffled
arrival order, the full figure sweep at K=3, equivalence under a process
pool (``REPRO_WORKERS=2``), and ETag stability across distinct ingestion
histories that reach the same state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults, obs
from repro.obs import live
from repro.service import ServiceApp, ServiceClient, split_study
from repro.service import state as svc_state
from repro.service.app import (
    ENRICHED_TABLES,
    STREAM_TABLES,
    fidelity_body,
    figure_body,
    figure_names,
    table_body,
)
from repro.stats.cdf import EmpiricalCDF
from repro.study import build_study


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    """Cold per-test cache dir, no faults, no lingering server."""
    from repro import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    faults.configure(None)
    yield
    obs.finish()
    faults.configure(None)
    server = live.active_server()
    if server is not None:
        server.stop()


@pytest.fixture(scope="module")
def tiny_study():
    return build_study("tiny", seed=7, cache=False)


@pytest.fixture(scope="module")
def tiny_figures(tiny_study):
    from repro.figures.suite import FigureSuite

    return FigureSuite(
        state=tiny_study._state,
        released=tiny_study.released,
        enriched=tiny_study.enriched,
    )


def _serve(study):
    app = ServiceApp(study.config)
    server = live.serve_background(app=app)
    return app, server, ServiceClient("127.0.0.1", server.port)


def _ingest_shuffled(client, study, k, *, seed):
    """Split into k payloads and deliver them in a shuffled order."""
    payloads = split_study(study, k, seed=seed)
    order = np.random.default_rng(seed + 1).permutation(k)
    for i in order:
        client.ingest(payloads[i])
    return payloads


def expected_stream_bodies(study) -> dict[str, bytes]:
    """What each streaming route must serve, rendered from the batch study."""
    instances = study.released.instances
    trust = np.asarray(instances["trust"])
    return {
        "catalog": table_body(study.released.batch_catalog),
        "instances": table_body(instances),
        "batch_rollup": table_body(svc_state.batch_rollup(instances)),
        "trust_cdf": table_body(
            svc_state.trust_cdf_table(EmpiricalCDF.from_sample(trust))
        ),
        "duration_hist": table_body(
            svc_state.duration_hist_table(
                svc_state.duration_histogram(instances)
            )
        ),
    }


def expected_enriched_bodies(study) -> dict[str, bytes]:
    return {
        name: table_body(getattr(study.enriched, name))
        for name in ENRICHED_TABLES
    }


# --------------------------------------------------------------------- #
# Byte identity across micro-batch counts and arrival orders
# --------------------------------------------------------------------- #


class TestByteIdentity:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_tables_and_fidelity_byte_identical(
        self, tiny_study, tiny_figures, k
    ):
        _, _, client = _serve(tiny_study)
        _ingest_shuffled(client, tiny_study, k, seed=k)

        for name, expect in expected_stream_bodies(tiny_study).items():
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200, name
            assert body == expect, f"/tables/{name} diverges at k={k}"
        for name, expect in expected_enriched_bodies(tiny_study).items():
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200, name
            assert body == expect, f"/tables/{name} diverges at k={k}"
        status, _, body = client.get("/fidelity")
        assert status == 200
        assert body == fidelity_body(tiny_figures), f"/fidelity at k={k}"

    def test_full_figure_sweep_k3(self, tiny_study, tiny_figures):
        """Every figure entry point, served vs batch, byte for byte."""
        _, _, client = _serve(tiny_study)
        _ingest_shuffled(client, tiny_study, 3, seed=33)

        for name in figure_names():
            status, _, body = client.get(f"/figures/{name}")
            assert status == 200, name
            expect = figure_body(getattr(tiny_figures, name)())
            assert body == expect, f"/figures/{name} diverges"

    def test_equivalence_under_worker_pool(self, tiny_study, monkeypatch):
        """The snapshot's enrichment path may fan out; bytes must not move."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        _, _, client = _serve(tiny_study)
        _ingest_shuffled(client, tiny_study, 3, seed=5)

        expect = expected_enriched_bodies(tiny_study)
        for name in ENRICHED_TABLES:
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200 and body == expect[name], name
        for name, want in expected_stream_bodies(tiny_study).items():
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200 and body == want, name

    def test_same_state_same_etag_across_histories(self, tiny_study):
        """K=3 and K=7 histories converge to identical ETags per route."""
        etags = []
        for k in (3, 7):
            _, server, client = _serve(tiny_study)
            _ingest_shuffled(client, tiny_study, k, seed=11 * k)
            tags = {}
            for name in STREAM_TABLES:
                status, headers, _ = client.get(f"/tables/{name}")
                assert status == 200
                tags[name] = headers["etag"]
            server.stop()
            etags.append(tags)
        assert etags[0] == etags[1]


# --------------------------------------------------------------------- #
# Small scale (one pass, tables + fidelity)
# --------------------------------------------------------------------- #


class TestSmallScale:
    def test_small_k3_tables_and_fidelity(self):
        study = build_study("small", seed=7, cache=False)
        from repro.figures.suite import FigureSuite

        figures = FigureSuite(
            state=study._state,
            released=study.released,
            enriched=study.enriched,
        )
        _, _, client = _serve(study)
        _ingest_shuffled(client, study, 3, seed=3)

        for name, expect in expected_stream_bodies(study).items():
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200 and body == expect, name
        for name, expect in expected_enriched_bodies(study).items():
            status, _, body = client.get(f"/tables/{name}")
            assert status == 200 and body == expect, name
        status, _, body = client.get("/fidelity")
        assert status == 200
        assert body == fidelity_body(figures)


# --------------------------------------------------------------------- #
# Protocol edges the harness relies on
# --------------------------------------------------------------------- #


class TestProtocol:
    def test_split_study_partitions_exactly(self, tiny_study):
        """The payloads partition every row and doc: no dupes, no drops."""
        payloads = split_study(tiny_study, 7, seed=2)
        instance_ids: list[int] = []
        batch_ids: list[int] = []
        html_ids: list[int] = []
        for payload in payloads:
            if "instances" in payload:
                cols = dict(
                    (name, values)
                    for name, _, values in payload["instances"]["columns"]
                )
                instance_ids.extend(cols["instance_id"])
            if "catalog" in payload:
                cols = dict(
                    (name, values)
                    for name, _, values in payload["catalog"]["columns"]
                )
                batch_ids.extend(cols["batch_id"])
            if "html" in payload:
                html_ids.extend(int(i) for i in payload["html"])
        released = tiny_study.released
        assert sorted(instance_ids) == sorted(
            np.asarray(released.instances["instance_id"]).tolist()
        )
        assert sorted(batch_ids) == sorted(
            np.asarray(released.batch_catalog["batch_id"]).tolist()
        )
        assert sorted(html_ids) == sorted(released.batch_html)

    def test_reads_before_ingest_are_409(self, tiny_study):
        _, _, client = _serve(tiny_study)
        for name in list(STREAM_TABLES) + list(ENRICHED_TABLES):
            status, _, _ = client.get(f"/tables/{name}")
            assert status == 409, name
        assert client.get("/fidelity")[0] == 409

    def test_duplicate_micro_batch_rejected_without_state_change(
        self, tiny_study
    ):
        from repro.service.client import ServiceError

        _, _, client = _serve(tiny_study)
        payloads = split_study(tiny_study, 3, seed=9)
        client.ingest(payloads[0])
        status, headers, body = client.get("/tables/catalog")
        with pytest.raises(ServiceError) as err:
            client.ingest(payloads[0])
        assert err.value.status == 400
        status2, headers2, body2 = client.get("/tables/catalog")
        assert (status2, body2) == (200, body)
        assert headers2["etag"] == headers["etag"]

    def test_config_key_mismatch_rejected(self, tiny_study):
        from repro.service.client import ServiceError

        _, _, client = _serve(tiny_study)
        payload = split_study(tiny_study, 1, seed=0)[0]
        payload["config_key"] = "0" * 64
        with pytest.raises(ServiceError) as err:
            client.ingest(payload)
        assert err.value.status == 400
        assert "config_key" in str(err.value.doc)

    def test_status_reflects_ingest_progress(self, tiny_study):
        _, _, client = _serve(tiny_study)
        assert client.status()["ingested_batches"] == 0
        payloads = split_study(tiny_study, 3, seed=4)
        client.ingest_all(payloads)
        status = client.status()
        assert status["ingested_batches"] == 3
        assert status["instance_rows"] == (
            tiny_study.released.instances.num_rows
        )
        assert status["catalog_rows"] == (
            tiny_study.released.batch_catalog.num_rows
        )
        assert status["html_docs"] == len(tiny_study.released.batch_html)
