"""Smoke + shape tests for every figure/table entry point."""

import numpy as np
import pytest


class TestSection3Figures:
    def test_fig01(self, figures):
        out = figures.fig01_sampling()
        assert len(out["all"]) == figures.num_weeks
        # Sampled counts never exceed the total.
        assert np.all(out["sampled"] <= out["all"] + 1e-9)

    def test_fig02(self, figures):
        out = figures.fig02_arrivals()
        assert out["instances_issued"].sum() > 0
        assert out["batches_issued"].sum() > 0

    def test_headline_load(self, figures):
        out = figures.headline_load_variation()
        assert out["busiest_over_median"] > 1
        assert out["lightest_over_median"] < 1

    def test_fig03(self, figures):
        out = figures.fig03_weekday()
        assert len(out["instances"]) == 7
        assert out["weekday_weekend_ratio"] > 1.2

    def test_fig04(self, figures):
        out = figures.fig04_workers()
        assert out["active_workers"].max() > 0

    def test_fig05(self, figures):
        out = figures.fig05_engagement()
        assert out["tasks_top10"].sum() > out["tasks_bottom90"].sum()

    def test_fig06(self, figures):
        out = figures.fig06_cluster_sizes()
        assert out["num_clusters"] == figures.enriched.num_clusters
        assert sum(c for _, c in out["histogram"]) == out["num_clusters"]

    def test_fig07(self, figures):
        out = figures.fig07_tasks_per_cluster()
        assert out["median_instances_per_cluster"] > 0

    def test_fig08(self, figures):
        out = figures.fig08_heavy_hitters()
        assert 1 <= len(out["curves"]) <= 10

    def test_fig09(self, figures):
        out = figures.fig09_label_distributions()
        for category in ("goals", "data_types", "operators"):
            assert len(out[category]) >= 2
        # Filter should be among the most-used operators (Figure 9c).
        operators = out["operators"]
        assert operators.get("Filt", 0) >= 0.5 * max(operators.values())

    def test_fig10_fig11_percentages(self, figures):
        for out in (figures.fig10_correlations(), figures.fig11_correlations()):
            for matrix in out.values():
                for breakdown in matrix.values():
                    assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_fig12(self, figures):
        out = figures.fig12_trends()
        # Complex goals outnumber simple goals cumulatively (Figure 12a).
        goals = out["goals"]
        assert goals["complex"][-1] > goals["simple"][-1]


class TestSection4Figures:
    def test_fig13(self, figures):
        out = figures.fig13_latency()
        assert out["pickup_dominance_ratio"] > 5

    def test_fig14(self, figures):
        out = figures.fig14_feature_cdfs()
        assert len(out) == len(figures.FIG14_PAIRS)
        for entry in out:
            if entry["status"] != "ok":
                continue
            xs, ys = entry["cdf_low"]
            assert len(xs) == len(ys)

    def test_tables_123(self, figures):
        tables = figures.tables_123()
        assert set(tables) == {"disagreement", "task_time", "pickup_time"}
        # Every reported row is significant at p < 0.01.
        for rows in tables.values():
            for row in rows:
                assert row["p_value"] < 0.01

    def test_fig25(self, figures):
        out = figures.fig25_drilldowns()
        assert len(out) == len(figures.FIG25_DRILLDOWNS)
        assert all("status" in entry for entry in out)

    def test_prediction_study(self, figures):
        out = figures.prediction_study()
        assert len(out) == 6
        for entry in out:
            assert entry["within_one_accuracy"] >= entry["exact_accuracy"]


class TestSection5Figures:
    def test_fig26(self, figures):
        out = figures.fig26_sources()
        assert out["source_stats"].num_rows >= 1
        assert out["active_sources_per_week"].max() >= 1

    def test_fig27(self, figures):
        out = figures.fig27_source_quality()
        assert out["top_by_workers"].num_rows <= 10
        assert out["top10_task_share"] > 0.5  # paper: 0.95

    def test_fig28(self, figures):
        out = figures.fig28_geography()
        assert out["num_countries"] >= 10
        assert 0.3 <= out["top5_share"] <= 0.8  # paper: ~0.5

    def test_fig29(self, figures):
        out = figures.fig29_workload()
        assert out["top10_task_share"] > 0.6
        assert out["fraction_under_1h_per_day"] > 0.7  # paper: > 0.9

    def test_fig30(self, figures):
        out = figures.fig30_lifetimes()
        assert 0.3 <= out["one_day_worker_fraction"] <= 0.75
        assert out["one_day_task_share"] < 0.1
        assert out["mean_trust_active"] > 0.85  # paper: > 0.91

    def test_table4(self, figures):
        out = figures.table4_sources()
        assert out["num_sources"] == 139
        assert out["num_observed"] <= 139
        assert "neodev" in out["all_sources"]


class TestStudyIntegration:
    def test_study_attributes(self, study):
        assert study.config.num_weeks == 209
        assert study.released.instances.num_rows > 0
        assert study.enriched.num_clusters > 0

    def test_figures_bound_to_study(self, study):
        assert study.figures.state is study.state
