"""Tests for bootstrap CIs and the pivot/cross-tab operations."""

import numpy as np
import pytest

from repro.stats import bootstrap_difference, bootstrap_interval
from repro.tables import Table, normalize_rows, pivot
from repro.tables.table import SchemaError


class TestBootstrapInterval:
    def test_median_interval_covers_truth(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(5.0, 1.0, size=500)
        ci = bootstrap_interval(sample, rng=np.random.default_rng(1))
        assert ci.low <= 5.0 <= ci.high
        assert ci.estimate == pytest.approx(np.median(sample))

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = bootstrap_interval(rng.normal(0, 1, 30), rng=np.random.default_rng(3))
        large = bootstrap_interval(rng.normal(0, 1, 3000), rng=np.random.default_rng(3))
        assert (large.high - large.low) < (small.high - small.low)

    def test_nan_dropped(self):
        ci = bootstrap_interval([1.0, float("nan"), 2.0, 3.0])
        assert np.isfinite(ci.estimate)

    def test_too_small(self):
        with pytest.raises(ValueError):
            bootstrap_interval([1.0, 2.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            bootstrap_interval([1, 2, 3], confidence=0.3)
        with pytest.raises(ValueError):
            bootstrap_interval([1, 2, 3], num_resamples=10)

    def test_custom_statistic(self):
        ci = bootstrap_interval(
            np.arange(100.0), statistic=np.mean, rng=np.random.default_rng(4)
        )
        assert ci.low <= 49.5 <= ci.high

    def test_contains(self):
        ci = bootstrap_interval(np.arange(100.0))
        assert ci.contains(ci.estimate)


class TestBootstrapDifference:
    def test_detects_shift(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0, 1, 200)
        b = rng.normal(2, 1, 200)
        ci = bootstrap_difference(a, b, rng=np.random.default_rng(6))
        assert ci.low > 0  # excludes zero
        assert ci.estimate == pytest.approx(2.0, abs=0.4)

    def test_null_includes_zero(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0, 1, 200)
        b = rng.normal(0, 1, 200)
        ci = bootstrap_difference(a, b, rng=np.random.default_rng(8))
        assert ci.contains(0.0)


class TestPivot:
    @pytest.fixture()
    def long_table(self):
        return Table(
            {
                "goal": ["ER", "ER", "SA", "SA", "SA"],
                "operator": ["Filt", "Rate", "Filt", "Filt", "Gen"],
                "instances": [10, 5, 20, 10, 5],
            }
        )

    def test_sum_pivot(self, long_table):
        wide = pivot(
            long_table, index="goal", columns="operator", values="instances"
        )
        rows = {r["goal"]: r for r in wide.to_rows()}
        assert rows["ER"]["Filt"] == 10
        assert rows["ER"]["Rate"] == 5
        assert rows["ER"]["Gen"] == 0  # filled
        assert rows["SA"]["Filt"] == 30

    def test_count_pivot(self, long_table):
        wide = pivot(
            long_table, index="goal", columns="operator", values="instances",
            agg="count",
        )
        rows = {r["goal"]: r for r in wide.to_rows()}
        assert rows["SA"]["Filt"] == 2

    def test_unknown_column(self, long_table):
        with pytest.raises(SchemaError):
            pivot(long_table, index="nope", columns="operator", values="instances")

    def test_normalize_rows(self, long_table):
        wide = pivot(
            long_table, index="goal", columns="operator", values="instances"
        )
        normalized = normalize_rows(wide, index="goal")
        for row in normalized.to_rows():
            total = sum(v for k, v in row.items() if k != "goal")
            assert total == pytest.approx(100.0)

    def test_normalize_zero_row(self):
        t = Table({"k": ["a"], "x": [0.0], "y": [0.0]})
        out = normalize_rows(t, index="k")
        assert out.row(0)["x"] == 0.0

    def test_pivot_reproduces_label_correlation(self, enriched):
        """pivot + normalize matches the dict-based Figure 10 computation."""
        from repro.analysis.marketplace import label_correlation
        from repro.enrichment.labels import split_labels

        ct = enriched.cluster_table
        rows = []
        for goals, operators, weight in zip(
            ct["goals"], ct["operators"], ct["num_instances"]
        ):
            if not goals or not operators:
                continue
            for g in split_labels(goals):
                for op in split_labels(operators):
                    rows.append(
                        {"goal": g, "operator": op, "instances": float(weight)}
                    )
        long = Table.from_rows(rows)
        wide = normalize_rows(
            pivot(long, index="goal", columns="operator", values="instances"),
            index="goal",
        )
        reference = label_correlation(enriched, rows="goals", columns="operators")
        for row in wide.to_rows():
            goal = row["goal"]
            for op, value in row.items():
                if op == "goal":
                    continue
                assert value == pytest.approx(reference[goal].get(op, 0.0), abs=1e-6)
