"""Tests for worker-learning analysis, the dataset store, and the CLI."""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.learning import learning_curve
from repro.cli import main as cli_main
from repro.dataset import StoreError, load_dataset, save_dataset
from repro.dataset.release import release_dataset
from repro.enrichment.metrics import compute_batch_metrics
from repro.simulator.config import Calibration, SimulationConfig
from repro.simulator.engine import simulate_marketplace


class TestLearningCurve:
    def test_recovers_generative_exponent(self, released, study):
        curve = learning_curve(released)
        truth = study.config.calibration.within_batch_learning_exponent
        assert curve.learning_exponent == pytest.approx(truth, abs=0.04)

    def test_curve_decays(self, released):
        curve = learning_curve(released)
        # Later ranks are faster than earlier ones on average.
        assert curve.mean_relative_duration[-1] < curve.mean_relative_duration[0]
        assert np.all(curve.mean_relative_duration < 1.05)

    def test_null_world_flat(self):
        config = dataclasses.replace(
            SimulationConfig.preset("tiny", seed=3),
            calibration=Calibration(within_batch_learning_exponent=0.0),
        )
        state = simulate_marketplace(config)
        released = release_dataset(state, config)
        curve = learning_curve(released)
        assert abs(curve.learning_exponent) < 0.03

    def test_counts_positive(self, released):
        curve = learning_curve(released)
        assert np.all(curve.counts >= 30)

    def test_insufficient_data_raises(self, released):
        with pytest.raises(ValueError):
            learning_curve(released, min_observations=10**9)


class TestDatasetStore:
    def test_round_trip(self, released, tmp_path):
        root = save_dataset(released, tmp_path / "ds")
        back = load_dataset(root)
        assert back.instances.num_rows == released.instances.num_rows
        assert back.batch_catalog.num_rows == released.batch_catalog.num_rows
        assert back.batch_html == released.batch_html

    def test_enrichment_identical_after_reload(self, released, study, tmp_path):
        root = save_dataset(released, tmp_path / "ds")
        back = load_dataset(root)
        original = compute_batch_metrics(released)
        reloaded = compute_batch_metrics(back)
        assert np.array_equal(original["batch_id"], reloaded["batch_id"])
        assert np.allclose(
            original["task_time"], reloaded["task_time"], equal_nan=True
        )
        assert np.allclose(
            original["disagreement"], reloaded["disagreement"], equal_nan=True
        )

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            load_dataset(tmp_path)

    def test_version_mismatch(self, released, tmp_path):
        root = save_dataset(released, tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="version"):
            load_dataset(root)

    def test_corrupted_html_count(self, released, tmp_path):
        root = save_dataset(released, tmp_path / "ds")
        victim = next(iter((root / "html").glob("*.html")))
        victim.unlink()
        with pytest.raises(StoreError, match="sampled"):
            load_dataset(root)


class TestCli:
    def test_simulate_and_reload(self, tmp_path, capsys):
        rc = cli_main(
            ["simulate", "--scale", "tiny", "--seed", "7",
             "--out", str(tmp_path / "export")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "instances" in out
        back = load_dataset(tmp_path / "export")
        assert back.instances.num_rows > 0

    def test_report(self, capsys):
        rc = cli_main(["report", "--scale", "tiny", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Section 3" in out and "Section 5" in out

    def test_abtest(self, capsys):
        rc = cli_main(
            ["abtest", "--feature", "num_images", "--value", "3",
             "--batches", "12", "--seed", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pickup_time" in out

    def test_abtest_unknown_feature(self, capsys):
        rc = cli_main(["abtest", "--feature", "num_unicorns", "--value", "1"])
        assert rc == 2

    def test_learning(self, capsys):
        rc = cli_main(["learning", "--scale", "tiny", "--seed", "7"])
        assert rc == 0
        assert "learning exponent" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli_main([])


class TestWorkloadCli:
    def test_workload_prints_json(self, capsys):
        rc = cli_main(["workload", "--scale", "tiny", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"entries"' in out

    def test_workload_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "wl.json"
        rc = cli_main(
            ["workload", "--scale", "tiny", "--seed", "7",
             "--out", str(out_file), "--min-support", "1"]
        )
        assert rc == 0
        from repro.workloads import WorkloadSpec

        spec = WorkloadSpec.load(out_file)
        assert spec.num_archetypes >= 1
