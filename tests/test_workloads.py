"""Tests for workload derivation."""

import math

import numpy as np
import pytest

from repro.workloads import WorkloadEntry, WorkloadSpec, derive_workload


@pytest.fixture(scope="module")
def spec(enriched):
    return derive_workload(enriched, min_support=1)


class TestDeriveWorkload:
    def test_nonempty(self, spec):
        assert spec.num_archetypes >= 3

    def test_weights_form_distribution(self, spec):
        assert spec.total_weight() == pytest.approx(1.0, abs=0.02)
        for entry in spec.entries:
            assert entry.weight > 0

    def test_sorted_by_weight(self, spec):
        weights = [entry.weight for entry in spec.entries]
        assert weights == sorted(weights, reverse=True)

    def test_shape_parameters_sane(self, spec):
        for entry in spec.entries:
            assert entry.median_items_per_batch >= 1
            assert entry.median_task_seconds > 0
            assert entry.num_clusters >= 1
            assert math.isnan(entry.median_disagreement) or (
                0 <= entry.median_disagreement <= 1
            )

    def test_min_support_filters(self, enriched):
        loose = derive_workload(enriched, min_support=1)
        strict = derive_workload(enriched, min_support=3)
        assert strict.num_archetypes <= loose.num_archetypes
        for entry in strict.entries:
            assert entry.num_clusters >= 3

    def test_top_truncation_renormalizes(self, enriched):
        top = derive_workload(enriched, min_support=1, top=3)
        assert top.num_archetypes <= 3
        assert top.total_weight() == pytest.approx(1.0)


class TestSpecSerialization:
    def test_json_round_trip(self, spec):
        back = WorkloadSpec.from_json(spec.to_json())
        # NaN != NaN breaks dataclass equality; canonical JSON is the
        # equality notion for specs.
        assert back.to_json() == spec.to_json()

    def test_file_round_trip(self, spec, tmp_path):
        path = tmp_path / "workload.json"
        spec.save(path)
        assert WorkloadSpec.load(path).to_json() == spec.to_json()


class TestSampling:
    def test_sample_sizes(self, spec):
        sampled = spec.sample(50, rng=np.random.default_rng(0))
        assert len(sampled) == 50
        assert all(isinstance(entry, WorkloadEntry) for entry in sampled)

    def test_sampling_tracks_weights(self, spec):
        rng = np.random.default_rng(1)
        sampled = spec.sample(4000, rng=rng)
        heaviest = spec.entries[0]
        share = sum(1 for e in sampled if e == heaviest) / len(sampled)
        assert share == pytest.approx(
            heaviest.weight / spec.total_weight(), abs=0.05
        )

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec().sample(5)
