"""Tests for the column-expression layer."""

import numpy as np
import pytest

from repro.tables import Table, col, lit


@pytest.fixture()
def table():
    return Table(
        {
            "x": [1, 2, 3, 4, 5],
            "y": [10.0, 20.0, float("nan"), 40.0, 50.0],
            "name": ["a", "b", "c", "b", "a"],
            "flag": [True, False, True, False, True],
        }
    )


class TestComparisons:
    def test_gt_filter(self, table):
        out = table.filter(col("x") > 3)
        assert list(out["x"]) == [4, 5]

    def test_le(self, table):
        assert list(table.filter(col("x") <= 2)["x"]) == [1, 2]

    def test_eq_string(self, table):
        out = table.filter(col("name") == "b")
        assert list(out["x"]) == [2, 4]

    def test_ne(self, table):
        out = table.filter(col("name").ne("a"))
        assert list(out["name"]) == ["b", "c", "b"]

    def test_column_vs_column(self, table):
        out = table.filter(col("y") > col("x") * 9)
        assert list(out["x"]) == [1, 2, 4, 5]


class TestBooleanAlgebra:
    def test_and(self, table):
        out = table.filter((col("x") > 1) & (col("x") < 5))
        assert list(out["x"]) == [2, 3, 4]

    def test_or(self, table):
        out = table.filter((col("x") == 1) | (col("x") == 5))
        assert list(out["x"]) == [1, 5]

    def test_invert(self, table):
        out = table.filter(~col("flag"))
        assert list(out["x"]) == [2, 4]

    def test_combined_with_nan_handling(self, table):
        out = table.filter(col("y").notnan() & (col("y") >= 20))
        assert list(out["x"]) == [2, 4, 5]


class TestArithmetic:
    def test_add_mul(self, table):
        values = (col("x") * 2 + 1).evaluate(table)
        assert list(values) == [3, 5, 7, 9, 11]

    def test_radd_rsub(self, table):
        assert list((10 - col("x")).evaluate(table)) == [9, 8, 7, 6, 5]
        assert list((1 + col("x")).evaluate(table)) == [2, 3, 4, 5, 6]

    def test_div(self, table):
        values = (col("y") / col("x")).evaluate(table)
        assert values[0] == 10.0
        assert np.isnan(values[2])

    def test_neg(self, table):
        assert list((-col("x")).evaluate(table)) == [-1, -2, -3, -4, -5]


class TestConvenience:
    def test_isin(self, table):
        out = table.filter(col("name").isin({"a", "c"}))
        assert list(out["x"]) == [1, 3, 5]

    def test_isnan_notnan(self, table):
        assert list(table.filter(col("y").isnan())["x"]) == [3]
        assert 3 not in list(table.filter(col("y").notnan())["x"])

    def test_abs_log_clip(self, table):
        assert list((-col("x")).abs().evaluate(table)) == [1, 2, 3, 4, 5]
        logged = col("x").log().evaluate(table)
        assert logged[0] == pytest.approx(0.0)
        clipped = col("x").clip(2, 4).evaluate(table)
        assert list(clipped) == [2, 2, 3, 4, 4]

    def test_map_values(self, table):
        upper = col("name").map_values(str.upper).evaluate(table)
        assert list(upper) == ["A", "B", "C", "B", "A"]

    def test_lit(self, table):
        assert (lit(5) > 3).evaluate(table)

    def test_repr_describes_tree(self):
        expr = (col("a") + 1) > col("b")
        assert "a" in repr(expr) and "b" in repr(expr) and "+" in repr(expr)


class TestIntegrationWithAnalyses:
    def test_prune_rule_via_expression(self, enriched):
        """The §4.1 prune expressed as a column expression."""
        ct = enriched.cluster_table
        pruned = ct.filter(
            col("disagreement").notnan() & ~(col("disagreement") > 0.5)
        )
        assert pruned.num_rows > 0
        assert np.all(pruned["disagreement"] <= 0.5)
