"""Fuzz tests: the HTML parser must survive arbitrary input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html import extract_features, parse_html, tokenize
from repro.html.parser import Element, TextNode

# Text biased toward markup-looking characters.
markup_soup = st.text(
    alphabet=st.sampled_from(list("<>/=\"' abcdivspnput-!x1")), max_size=200
)

tag_fragments = st.lists(
    st.sampled_from(
        ["<div>", "</div>", "<p class='x'>", "</p>", "<img src=a>",
         "<input type=text>", "text here", "<b>Example:</b>", "< notatag",
         "<DIV >", "</>", "<a href='u'>link</a>", "<!-- c -->", "&amp;"]
    ),
    max_size=30,
).map("".join)


@given(markup_soup)
@settings(max_examples=120, deadline=None)
def test_parse_never_crashes_on_soup(html):
    root = parse_html(html)
    assert root.tag == "root"
    # The tree is traversable and text extraction terminates.
    _ = root.text_content()
    _ = list(root.iter_elements())


@given(tag_fragments)
@settings(max_examples=120, deadline=None)
def test_parse_never_crashes_on_fragments(html):
    root = parse_html(html)
    features = extract_features(root)
    assert features.num_words >= 0
    assert features.num_images >= 0


@given(tag_fragments)
@settings(max_examples=100, deadline=None)
def test_tree_is_well_formed(html):
    root = parse_html(html)
    # Every node is either an Element or a TextNode; no cycles within depth.
    seen = 0
    for element in root.iter_elements():
        seen += 1
        assert seen < 10_000
        for child in element.children:
            assert isinstance(child, (Element, TextNode))


@given(markup_soup)
@settings(max_examples=100, deadline=None)
def test_tokenize_covers_input_order(html):
    tokens = tokenize(html)
    # Text tokens never contain complete tags.
    for token in tokens:
        if token[0] == "text":
            assert "<div>" not in token[1]


@given(st.integers(0, 50), st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_feature_counts_scale_with_generated_markup(n_imgs, n_boxes, n_examples):
    html = (
        "<div>"
        + "<img src=x>" * n_imgs
        + "<input type=text>" * n_boxes
        + "<b>Example:</b>" * n_examples
        + "</div>"
    )
    features = extract_features(html)
    assert features.num_images == n_imgs
    assert features.num_text_boxes == n_boxes
    assert features.num_examples == n_examples
