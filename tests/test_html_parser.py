"""Unit tests for the HTML parser and feature extraction."""

import pytest

from repro.html import Element, TextNode, extract_features, parse_html, tokenize


class TestTokenizer:
    def test_basic_tags_and_text(self):
        tokens = tokenize("<p>hello</p>")
        assert tokens[0][:2] == ("open", "p")
        assert tokens[1] == ("text", "hello")
        assert tokens[2][:2] == ("close", "p")

    def test_void_element(self):
        tokens = tokenize('<img src="x.png">')
        assert tokens[0][0] == "selfclose"
        assert tokens[0][2]["src"] == "x.png"

    def test_self_closing_slash(self):
        tokens = tokenize("<div/>")
        assert tokens[0][0] == "selfclose"

    def test_comments_stripped(self):
        assert tokenize("<!-- secret --><p>x</p>")[0][:2] == ("open", "p")

    def test_doctype_stripped(self):
        assert tokenize("<!DOCTYPE html><p>x</p>")[0][:2] == ("open", "p")

    def test_attribute_quoting_variants(self):
        tokens = tokenize("""<input type=text name='n' value="v" checked>""")
        attrs = tokens[0][2]
        assert attrs == {"type": "text", "name": "n", "value": "v", "checked": ""}

    def test_case_insensitive_tags(self):
        assert tokenize("<DIV>")[0][1] == "div"


class TestParser:
    def test_nesting(self):
        root = parse_html("<div><p>one</p><p>two</p></div>")
        div = root.children[0]
        assert div.tag == "div"
        assert [c.tag for c in div.children] == ["p", "p"]

    def test_text_content(self):
        root = parse_html("<div>a<span>b</span>c</div>")
        assert root.text_content().replace(" ", "") == "abc"

    def test_own_text_excludes_children(self):
        root = parse_html("<div>a<span>b</span></div>")
        assert root.children[0].own_text() == "a"

    def test_stray_close_tag_ignored(self):
        root = parse_html("</p><div>x</div>")
        assert root.children[0].tag == "div"

    def test_unclosed_tags_recovered(self):
        root = parse_html("<div><p>one<p>two</div><b>after</b>")
        tags = [e.tag for e in root.iter_elements()]
        assert "b" in tags

    def test_mismatched_close_pops_stack(self):
        root = parse_html("<div><span>x</div>")
        # span was implicitly closed when </div> popped.
        div = root.children[0]
        assert div.tag == "div"

    def test_find_all(self):
        root = parse_html("<div><p>1</p><section><p>2</p></section></div>")
        assert len(root.find_all("p")) == 2

    def test_whitespace_only_text_skipped(self):
        root = parse_html("<div>   </div>")
        assert root.children[0].children == []

    def test_attr_default(self):
        root = parse_html("<div>x</div>")
        assert root.children[0].attr("class", "none") == "none"


class TestFeatureExtraction:
    def test_word_count_excludes_script(self):
        html = "<script>var x = 1 2 3 4;</script><p>one two three</p>"
        assert extract_features(html).num_words == 3

    def test_text_boxes(self):
        html = (
            '<input type="text"><textarea></textarea>'
            '<input type="radio"><input type="checkbox"><input>'
        )
        f = extract_features(html)
        assert f.num_text_boxes == 3  # text + textarea + typeless input
        assert f.num_radio_buttons == 1
        assert f.num_checkboxes == 1
        assert f.num_input_fields == 5

    def test_examples_counted_only_when_prominent(self):
        html = (
            "<b>Example:</b><p>this example inside prose does not count</p>"
            "<h3>Example 2:</h3><span>examples</span>"
        )
        assert extract_features(html).num_examples == 3

    def test_images(self):
        assert extract_features('<img src="a"><img src="b">').num_images == 2

    def test_instructions_by_class(self):
        assert extract_features('<div class="instructions">x</div>').has_instructions

    def test_instructions_by_heading(self):
        assert extract_features("<h2>Instructions</h2>").has_instructions

    def test_no_instructions(self):
        assert not extract_features("<p>just text</p>").has_instructions

    def test_selects_counted(self):
        f = extract_features("<select><option>a</option></select>")
        assert f.num_selects == 1
        assert f.num_input_fields == 1

    def test_as_dict_keys(self):
        d = extract_features("<p>x</p>").as_dict()
        assert "num_words" in d and "has_instructions" in d

    def test_accepts_parsed_tree(self):
        root = parse_html("<p>one two</p>")
        assert extract_features(root).num_words == 2
