"""Dictionary-encoded string columns: round-trips, kernels, shard merges."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables import (
    DictColumn,
    Table,
    concat_dict_columns,
    concat_tables,
    dict_encode,
    group_by,
    hash_join,
)
from repro.tables.column import factorize

value_lists = st.lists(
    st.one_of(st.sampled_from(["a", "b", "cc", ""]), st.none()),
    min_size=0,
    max_size=60,
)


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_dict_encode_round_trip(values):
    column = dict_encode(np.array(values, dtype=object))
    back = column.materialize()
    assert back.dtype == object
    assert len(back) == len(values)
    assert all(
        (x is None and y is None) or x == y for x, y in zip(back, values)
    )
    # Uniques are distinct and every code is in range.
    assert len(set(column.uniques.tolist())) == len(column.uniques)
    if len(values):
        assert column.codes.min() >= 0
        assert column.codes.max() < len(column.uniques)


@given(value_lists)
@settings(max_examples=80, deadline=None)
def test_dense_codes_match_factorize_of_materialized(values):
    column = dict_encode(np.array(values, dtype=object))
    codes, uniques = column.dense_codes()
    ref_codes, ref_uniques = factorize(column.materialize())
    assert np.array_equal(codes, ref_codes)
    assert list(uniques) == list(ref_uniques)


@given(value_lists, st.integers(0, 10**6))
@settings(max_examples=60, deadline=None)
def test_take_and_filter_slice_codes_share_uniques(values, seed):
    column = dict_encode(np.array(values, dtype=object))
    rng = np.random.default_rng(seed)
    raw = column.materialize()
    if len(values):
        idx = rng.integers(0, len(values), size=len(values) // 2 + 1)
        taken = column.take(idx)
        assert taken.uniques is column.uniques
        assert list(taken.materialize()) == list(raw[idx])
    mask = rng.random(len(values)) < 0.5
    kept = column.filter(mask)
    assert kept.uniques is column.uniques
    assert list(kept.materialize()) == list(raw[mask])


@given(st.lists(value_lists, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_concat_dict_columns_matches_object_concat(parts):
    columns = [dict_encode(np.array(p, dtype=object)) for p in parts]
    merged = concat_dict_columns(columns)
    expected = [v for p in parts for v in p]
    assert list(merged.materialize()) == expected
    assert len(set(merged.uniques.tolist())) == len(merged.uniques)


@given(value_lists)
@settings(max_examples=40, deadline=None)
def test_group_by_on_dict_column_matches_object_column(values):
    if not values:
        return
    x = np.arange(len(values), dtype=np.float64)
    enc = Table({"key": dict_encode(np.array(values, dtype=object)), "x": x})
    obj = Table({"key": np.array(values, dtype=object), "x": x})
    a = group_by(enc, "key").agg({"n": ("x", "count"), "tot": ("x", "sum")})
    b = group_by(obj, "key").agg({"n": ("x", "count"), "tot": ("x", "sum")})
    assert list(a["key"]) == list(b["key"])
    assert np.array_equal(a["n"], b["n"])
    assert np.array_equal(a["tot"], b["tot"])


@given(value_lists, value_lists)
@settings(max_examples=40, deadline=None)
def test_join_on_dict_keys_matches_object_keys(left_keys, right_keys):
    lx = np.arange(len(left_keys), dtype=np.int64)
    ry = np.arange(len(right_keys), dtype=np.int64)
    for how in ("inner", "left"):
        enc = hash_join(
            Table({"k": dict_encode(np.array(left_keys, dtype=object)), "lx": lx}),
            Table({"k": dict_encode(np.array(right_keys, dtype=object)), "ry": ry}),
            on="k",
            how=how,
        )
        obj = hash_join(
            Table({"k": np.array(left_keys, dtype=object), "lx": lx}),
            Table({"k": np.array(right_keys, dtype=object), "ry": ry}),
            on="k",
            how=how,
        )
        assert list(enc["k"]) == list(obj["k"])
        assert np.array_equal(enc["lx"], obj["lx"])
        assert np.allclose(
            enc["ry"].astype(np.float64),
            obj["ry"].astype(np.float64),
            equal_nan=True,
        )


@given(st.lists(value_lists, min_size=2, max_size=4))
@settings(max_examples=40, deadline=None)
def test_sharded_concat_then_group_matches_monolithic(shards):
    tables = [
        Table(
            {
                "key": dict_encode(np.array(part, dtype=object)),
                "x": np.ones(len(part)),
            }
        )
        for part in shards
    ]
    if not any(t.num_rows for t in tables):
        return
    merged = concat_tables([t for t in tables if t.num_rows])
    mono = Table(
        {
            "key": np.array(
                [v for part in shards for v in part], dtype=object
            ),
            "x": np.ones(sum(len(p) for p in shards)),
        }
    )
    a = group_by(merged, "key").agg({"n": ("x", "count")})
    b = group_by(mono, "key").agg({"n": ("x", "count")})
    assert list(a["key"]) == list(b["key"])
    assert np.array_equal(a["n"], b["n"])


def test_dict_column_pickle_round_trip():
    column = dict_encode(np.array(["x", "y", "x", None], dtype=object))
    clone = pickle.loads(pickle.dumps(column))
    assert isinstance(clone, DictColumn)
    assert list(clone.materialize()) == ["x", "y", "x", None]


def test_table_ops_on_dict_columns_match_object_columns():
    values = ["b", "a", "b", "c", "a", "b"]
    enc = Table(
        {
            "s": dict_encode(np.array(values, dtype=object)),
            "i": np.arange(6, dtype=np.int64),
        }
    )
    obj = Table({"s": np.array(values, dtype=object), "i": np.arange(6)})
    assert list(enc.sort_by("s")["s"]) == list(obj.sort_by("s")["s"])
    assert list(enc.distinct(["s"])["s"]) == list(obj.distinct(["s"])["s"])
    assert enc.schema() == {"s": "str", "i": "int"}
    assert enc.to_rows() == obj.to_rows()
    nun = group_by(enc, "s").agg({"u": ("i", "nunique")})
    ref = group_by(obj, "s").agg({"u": ("i", "nunique")})
    assert list(nun["s"]) == list(ref["s"])
    assert np.array_equal(nun["u"], ref["u"])


def test_dict_encode_is_noop_on_dict_columns_and_counts_metrics():
    from repro import obs

    column = dict_encode(np.array(["p", "q"], dtype=object))
    assert dict_encode(column) is column
    before = obs.REGISTRY.counter_values().get("dict.encoded_columns", 0)
    dict_encode(np.array(["p", "q", "p"], dtype=object))
    assert obs.REGISTRY.counter_values()["dict.encoded_columns"] == before + 1


def test_dict_encode_codes_are_first_appearance_dense():
    column = dict_encode(np.array(["q", "p", "q", "r"], dtype=object))
    assert list(column.uniques) == ["q", "p", "r"]
    assert list(column.codes) == [0, 1, 0, 2]
