"""Focused tests for the per-day allocation policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.allocation import allocate_workers
from repro.simulator.config import Calibration
from repro.simulator.workers import ONE_DAY, POWER, REGULAR, SHORT, WorkerPool


def make_pool(
    *,
    engagement: list[int],
    start_day: list[int],
    end_day: list[int],
    days_per_week: float = 7.0,
    weight: float = 1.0,
) -> WorkerPool:
    n = len(engagement)
    return WorkerPool(
        source_idx=np.zeros(n, dtype=np.int64),
        country=np.array(["X"] * n, dtype=object),
        engagement=np.asarray(engagement, dtype=np.int64),
        accuracy=np.full(n, 0.9),
        speed=np.ones(n),
        weight=np.full(n, weight),
        start_day=np.asarray(start_day, dtype=np.int64),
        end_day=np.asarray(end_day, dtype=np.int64),
        days_per_week=np.full(n, days_per_week),
        salt=np.arange(1, n + 1, dtype=np.int64) * 7919,
    )


class TestAllocation:
    def test_every_instance_assigned(self):
        pool = make_pool(
            engagement=[POWER] * 5, start_day=[0] * 5, end_day=[100] * 5
        )
        days = np.repeat(np.arange(10), 20)
        assigned = allocate_workers(days, pool, np.random.default_rng(0))
        assert len(assigned) == 200
        assert assigned.min() >= 0 and assigned.max() < 5

    def test_one_day_worker_only_on_their_day(self):
        pool = make_pool(
            engagement=[ONE_DAY, POWER],
            start_day=[3, 0],
            end_day=[3, 100],
        )
        days = np.repeat(np.arange(10), 50)
        assigned = allocate_workers(days, pool, np.random.default_rng(1))
        one_day_days = set(days[assigned == 0].tolist())
        assert one_day_days <= {3}
        # And they did get work on their day.
        assert 3 in one_day_days

    def test_power_absorbs_spike(self):
        """On a spike day, casual workers stay near their bundles and power
        takes the rest."""
        cal = Calibration()
        pool = make_pool(
            engagement=[SHORT] * 5 + [POWER] * 3,
            start_day=[0] * 8,
            end_day=[100] * 8,
        )
        days = np.zeros(5000, dtype=np.int64)
        assigned = allocate_workers(days, pool, np.random.default_rng(2), cal)
        counts = np.bincount(assigned, minlength=8)
        casual_total = counts[:5].sum()
        power_total = counts[5:].sum()
        assert power_total > casual_total
        # Casual volume bounded by the cap.
        assert casual_total <= cal.casual_volume_cap * 5000 + 5

    def test_presence_implies_work_on_quiet_days(self):
        """Each available casual worker gets at least one task when there is
        enough volume for everyone."""
        pool = make_pool(
            engagement=[SHORT] * 4 + [POWER],
            start_day=[0] * 5,
            end_day=[100] * 5,
        )
        days = np.zeros(40, dtype=np.int64)
        assigned = allocate_workers(days, pool, np.random.default_rng(3))
        counts = np.bincount(assigned, minlength=5)
        assert np.all(counts[:4] >= 1)

    def test_window_fallback_when_nobody_clears_hash(self):
        """With days_per_week ~ 0, the window fallback still assigns work."""
        pool = make_pool(
            engagement=[REGULAR, POWER],
            start_day=[0, 0],
            end_day=[100, 100],
            days_per_week=0.0001,
        )
        days = np.zeros(10, dtype=np.int64)
        assigned = allocate_workers(days, pool, np.random.default_rng(4))
        assert len(assigned) == 10

    def test_empty_input(self):
        pool = make_pool(engagement=[POWER], start_day=[0], end_day=[10])
        out = allocate_workers(
            np.empty(0, dtype=np.int64), pool, np.random.default_rng(0)
        )
        assert len(out) == 0

    @given(st.integers(0, 2**31 - 1), st.integers(1, 300))
    @settings(max_examples=25, deadline=None)
    def test_always_total_and_valid(self, seed, n_instances):
        pool = make_pool(
            engagement=[ONE_DAY, SHORT, REGULAR, POWER],
            start_day=[2, 0, 0, 0],
            end_day=[2, 30, 60, 90],
            days_per_week=3.0,
        )
        rng = np.random.default_rng(seed)
        days = rng.integers(0, 5, size=n_instances)
        assigned = allocate_workers(days, pool, rng)
        assert len(assigned) == n_instances
        assert assigned.min() >= 0 and assigned.max() < 4
        # One-day worker (index 0) never works off day 2.
        mask = assigned == 0
        if mask.any():
            assert set(days[mask].tolist()) <= {2}
