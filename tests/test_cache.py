"""Tests for the content-addressed study cache (:mod:`repro.cache`)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import build_study, cache
from repro.simulator.config import SimulationConfig


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    yield tmp_path / "cache"


def _tables_equal(a, b) -> bool:
    if list(a.column_names) != list(b.column_names):
        return False
    for name in a.column_names:
        ca, cb = a[name], b[name]
        if ca.dtype != cb.dtype:
            return False
        if ca.dtype == object:
            if ca.tolist() != cb.tolist():
                return False
        elif np.issubdtype(ca.dtype, np.floating):
            if not np.array_equal(ca, cb, equal_nan=True):
                return False
        elif not np.array_equal(ca, cb):
            return False
    return True


class TestKeying:
    def test_key_is_stable(self):
        config = SimulationConfig.preset("tiny", seed=7)
        assert cache.study_key(config) == cache.study_key(config)

    def test_key_changes_with_seed(self):
        a = SimulationConfig.preset("tiny", seed=7)
        b = SimulationConfig.preset("tiny", seed=8)
        assert cache.study_key(a) != cache.study_key(b)

    def test_key_changes_with_scale(self):
        a = SimulationConfig.preset("tiny", seed=7)
        b = SimulationConfig.preset("small", seed=7)
        assert cache.study_key(a) != cache.study_key(b)

    def test_key_covers_every_config_field(self):
        import dataclasses

        config = SimulationConfig.preset("tiny", seed=7)
        payload = cache._jsonable(config)
        for field in dataclasses.fields(config):
            assert field.name in payload

    def test_cache_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv(cache.NO_CACHE_ENV, raising=False)
        assert cache.cache_enabled(None) is True
        assert cache.cache_enabled(False) is False
        monkeypatch.setenv(cache.NO_CACHE_ENV, "1")
        assert cache.cache_enabled(None) is False
        assert cache.cache_enabled(True) is True


class TestRoundTrip:
    def test_warm_build_is_byte_identical(self, cache_dir):
        cold = build_study("tiny", seed=7)
        assert cache_dir.is_dir() and any(cache_dir.iterdir())
        warm = build_study("tiny", seed=7)

        assert _tables_equal(
            cold.released.batch_catalog, warm.released.batch_catalog
        )
        assert _tables_equal(cold.released.instances, warm.released.instances)
        assert _tables_equal(
            cold.enriched.batch_table, warm.enriched.batch_table
        )
        assert _tables_equal(
            cold.enriched.cluster_table, warm.enriched.cluster_table
        )
        assert _tables_equal(cold.enriched.labels, warm.enriched.labels)
        assert cold.released.batch_html == warm.released.batch_html
        assert cold.enriched.cluster_of_batch == warm.enriched.cluster_of_batch

    def test_warm_study_defers_simulation(self, cache_dir):
        build_study("tiny", seed=7)
        warm = build_study("tiny", seed=7)
        from repro.study import _LazyState

        assert isinstance(warm._state, _LazyState)
        assert warm._state._state is None  # not simulated yet
        assert warm.config.seed == 7  # config access does not materialize
        assert warm._state._state is None
        # Touching .state materializes the real simulator state.
        assert warm.state.config.seed == 7
        assert warm._state._state is not None

    def test_figures_work_on_warm_study(self, cache_dir):
        build_study("tiny", seed=7)
        warm = build_study("tiny", seed=7)
        result = warm.figures.fig06_cluster_sizes()
        assert result
        # fig02 reads state.config (num_weeks) through the lazy proxy.
        assert warm.figures.fig03_weekday()

    def test_no_cache_flag_bypasses_store_and_load(self, cache_dir):
        build_study("tiny", seed=7, cache=False)
        assert not cache_dir.exists() or not any(cache_dir.iterdir())
        # Populate, then prove cache=False ignores the stored entry.
        build_study("tiny", seed=7)
        entry = next(p for p in cache_dir.iterdir() if p.is_dir())
        (entry / "manifest.json").write_text(json.dumps({"schema": -1}))
        uncached = build_study("tiny", seed=7, cache=False)  # must not read it
        assert uncached.released.instances.num_rows > 0

    def test_changed_seed_misses(self, cache_dir):
        build_study("tiny", seed=7)
        assert cache.load_study(SimulationConfig.preset("tiny", seed=8)) is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        build_study("tiny", seed=7)
        config = SimulationConfig.preset("tiny", seed=7)
        entry = cache_dir / cache.study_key(config)
        (entry / "manifest.json").write_text("{not json")
        assert cache.load_study(config) is None
        # And build_study falls back to a cold build without raising.
        rebuilt = build_study("tiny", seed=7)
        assert rebuilt.released.instances.num_rows > 0

    def test_missing_table_file_is_a_miss(self, cache_dir):
        build_study("tiny", seed=7)
        config = SimulationConfig.preset("tiny", seed=7)
        entry = cache_dir / cache.study_key(config)
        os.remove(entry / "enriched_cluster_table.npz")
        assert cache.load_study(config) is None

    def test_clear_and_list(self, cache_dir):
        build_study("tiny", seed=7)
        build_study("tiny", seed=9)
        entries = cache.list_entries()
        assert len(entries) == 2
        assert all("num_instances" in e and "size_bytes" in e for e in entries)
        assert cache.clear_cache() == 2
        assert cache.list_entries() == []


class TestCliWiring:
    """The CLI must defer to ``REPRO_NO_CACHE`` unless --no-cache is given."""

    def test_env_no_cache_respected_without_flag(
        self, cache_dir, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.setenv(cache.NO_CACHE_ENV, "1")
        out = tmp_path / "dataset"
        assert cli.main(
            ["simulate", "--scale", "tiny", "--seed", "7", "--out", str(out)]
        ) == 0
        assert cache.list_entries() == []

    def test_default_cli_run_populates_cache(
        self, cache_dir, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.delenv(cache.NO_CACHE_ENV, raising=False)
        out = tmp_path / "dataset"
        assert cli.main(
            ["simulate", "--scale", "tiny", "--seed", "7", "--out", str(out)]
        ) == 0
        assert len(cache.list_entries()) == 1

    def test_no_cache_flag_bypasses(self, cache_dir, tmp_path, capsys):
        from repro import cli

        out = tmp_path / "dataset"
        assert cli.main(
            [
                "simulate", "--scale", "tiny", "--seed", "7",
                "--no-cache", "--out", str(out),
            ]
        ) == 0
        assert cache.list_entries() == []
