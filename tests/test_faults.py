"""Failure-injection suite: every injected fault must leave the study
byte-identical or fail loudly (:mod:`repro.faults`).

Covers the fault-spec grammar, the cache recovery machinery (checksums,
quarantine, write-failure visibility), the pool recovery machinery
(spawn retry, chunk crash/hang fallbacks, mapped-function error
propagation), dataset-save atomicity, and the CLI ``--faults`` wiring.
"""

from __future__ import annotations

import os
import pickle
import shutil
import time
from pathlib import Path

import numpy as np
import pytest

from repro import build_study, cache, faults, obs, parallel
from repro.parallel import map_chunks


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts and ends with no fault rules installed.

    Also forgets which serial-fallback causes already warned, so each test
    can assert on its own RuntimeWarning despite warn-once-per-process.
    """
    from repro import parallel

    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.configure(None)
    parallel.reset_warnings()
    yield
    faults.configure(None)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch, study):
    """A private cache dir pre-populated with the session study's entry."""
    src = Path(os.environ[cache.CACHE_DIR_ENV])
    dst = tmp_path / "cache"
    shutil.copytree(src, dst)
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(dst))
    return dst


def _tables_equal(a, b) -> bool:
    if list(a.column_names) != list(b.column_names):
        return False
    for name in a.column_names:
        ca, cb = a[name], b[name]
        if ca.dtype != cb.dtype:
            return False
        if ca.dtype == object:
            if ca.tolist() != cb.tolist():
                return False
        elif np.issubdtype(ca.dtype, np.floating):
            if not np.array_equal(ca, cb, equal_nan=True):
                return False
        elif not np.array_equal(ca, cb):
            return False
    return True


def _studies_equal(a, b) -> bool:
    return (
        _tables_equal(a.released.batch_catalog, b.released.batch_catalog)
        and _tables_equal(a.released.instances, b.released.instances)
        and _tables_equal(a.enriched.batch_table, b.enriched.batch_table)
        and _tables_equal(a.enriched.cluster_table, b.enriched.cluster_table)
        and _tables_equal(a.enriched.labels, b.enriched.labels)
        and a.released.batch_html == b.released.batch_html
        and a.enriched.cluster_of_batch == b.enriched.cluster_of_batch
    )


def _square(x):
    return x * x


_CALLS_DIR_ENV = "REPRO_FAULTS_TEST_CALLS"


def _record_then_maybe_boom(x):
    """Append one byte per call so double execution is detectable."""
    with open(os.path.join(os.environ[_CALLS_DIR_ENV], str(x)), "a") as fh:
        fh.write("x")
    if x == 13:
        raise ValueError("boom at 13")
    return x * 2


class TestSpecGrammar:
    def test_parse_rules(self):
        rules = faults.parse("cache.write:fail@2, pool.spawn:fail,cache.load:corrupt@1")
        assert rules == (
            ("cache.write", "fail", 2),
            ("pool.spawn", "fail", None),
            ("cache.load", "corrupt", 1),
        )

    def test_empty_spec_is_no_rules(self):
        assert faults.parse("") == ()
        assert faults.parse(" , ") == ()

    @pytest.mark.parametrize(
        "bad",
        [
            "nope",
            "pool.spawn",
            "unknown.site:fail",
            "cache.write:explode",
            "pool.spawn:fail@0",
            "pool.spawn:fail@x",
            "pool.spawn:fail@",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.parse(bad)

    def test_at_n_fires_exactly_on_nth_arrival(self):
        faults.configure("pool.spawn:fail@2")
        assert faults.fire("pool.spawn") is None
        assert faults.fire("pool.spawn") == "fail"
        assert faults.fire("pool.spawn") is None
        assert faults.arrival_counts() == {"pool.spawn": 3}

    def test_bare_rule_fires_every_arrival(self):
        faults.configure("pool.chunk:hang")
        assert [faults.fire("pool.chunk") for _ in range(3)] == ["hang"] * 3

    def test_other_sites_unaffected(self):
        faults.configure("cache.write:fail")
        assert faults.fire("cache.load") is None
        assert faults.arrival_counts() == {}

    def test_env_spec_is_read_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cache.write:fail@1")
        assert faults.active()
        assert faults.fire("cache.write") == "fail"
        monkeypatch.setenv(faults.FAULTS_ENV, "")
        assert not faults.active()

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "cache.write:fail")
        faults.configure("pool.spawn:fail")
        assert faults.fire("cache.write") is None
        assert faults.fire("pool.spawn") == "fail"

    def test_check_raises_injected_oserror(self):
        faults.configure("cache.write:fail@1")
        with pytest.raises(OSError, match="injected fault: cache.write:fail"):
            faults.check("cache.write")
        assert faults.check("cache.write") is None  # @1 consumed

    def test_fired_faults_are_counted(self):
        injected = obs.counter("faults.injected")
        faults.configure("pool.spawn:fail")
        before = injected.value
        faults.fire("pool.spawn")
        assert injected.value == before + 1


class TestCacheWriteFault:
    def test_write_failure_is_loud_and_recovers(self, tmp_path, monkeypatch, study):
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "fresh"))
        write_failed = obs.counter("cache.write_failed")
        hits = obs.counter("cache.hit")
        faults.configure("cache.write:fail@1")

        before = write_failed.value
        with pytest.warns(RuntimeWarning, match="failed to persist"):
            faulted = build_study("tiny", seed=7)
        assert write_failed.value == before + 1
        assert cache.list_entries() == []
        # The in-memory study is byte-identical to the healthy one.
        assert _studies_equal(faulted, study)

        # The fault was @1: the next cold build persists normally ...
        rebuilt = build_study("tiny", seed=7)
        assert len(cache.list_entries()) == 1
        assert _studies_equal(rebuilt, study)
        # ... and the build after that is a warm hit.
        h0 = hits.value
        warm = build_study("tiny", seed=7)
        assert hits.value == h0 + 1
        assert _studies_equal(warm, study)


class TestCacheCorruption:
    def test_corrupt_entry_is_one_miss_no_bytes_read(self, cache_dir, study):
        entry = cache_dir / cache.study_key(study.config)
        assert entry.is_dir()
        misses = obs.counter("cache.miss")
        corrupt = obs.counter("cache.corrupt")
        bytes_read = obs.counter("cache.bytes_read")
        hits = obs.counter("cache.hit")
        before = (misses.value, corrupt.value, bytes_read.value, hits.value)

        faults.configure("cache.load:corrupt@1")
        assert cache.load_study(study.config) is None

        assert misses.value == before[0] + 1
        assert corrupt.value == before[1] + 1
        assert bytes_read.value == before[2]  # nothing counted as read
        assert hits.value == before[3]
        # The damaged entry was quarantined out of its key slot.
        assert not entry.exists()
        assert any(p.name.startswith(".quarantine-") for p in cache_dir.iterdir())

    def test_warm_rebuild_after_quarantine_rewrites_entry(self, cache_dir, study):
        entry = cache_dir / cache.study_key(study.config)
        faults.configure("cache.load:corrupt@1")
        # build_study sees the corrupt entry as a miss, rebuilds cold,
        # and re-writes a healthy entry — byte-identical throughout.
        rebuilt = build_study("tiny", seed=7)
        assert _studies_equal(rebuilt, study)
        assert entry.is_dir()
        # With the fault consumed, the re-written entry serves a warm hit.
        hits = obs.counter("cache.hit")
        h0 = hits.value
        warm = build_study("tiny", seed=7)
        assert hits.value == h0 + 1
        assert _studies_equal(warm, study)

    def test_checksum_catches_flipped_byte(self, cache_dir, study):
        entry = cache_dir / cache.study_key(study.config)
        victim = entry / "enriched_labels.npz"
        data = bytearray(victim.read_bytes())
        data[len(data) // 2] ^= 0xFF
        victim.write_bytes(bytes(data))
        corrupt = obs.counter("cache.corrupt")
        before = corrupt.value
        assert cache.load_study(study.config) is None
        assert corrupt.value == before + 1
        assert not entry.exists()

    def test_truncated_npz_with_matching_checksum_is_a_miss(self, cache_dir, study):
        # Defeat the checksum layer on purpose (manifest updated to match
        # the truncated bytes) so the load path itself must absorb the
        # BadZipFile/EOFError/UnpicklingError a truncated archive raises.
        import hashlib
        import json

        entry = cache_dir / cache.study_key(study.config)
        victim = entry / "batch_html.npz"
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        manifest_path = entry / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["checksums"]["batch_html.npz"] = hashlib.sha256(
            victim.read_bytes()
        ).hexdigest()
        manifest_path.write_text(json.dumps(manifest))
        assert cache.load_study(study.config) is None
        assert not entry.exists()

    @pytest.mark.parametrize(
        "exc", [pickle.UnpicklingError("pickle data was truncated"), EOFError()]
    )
    def test_unpickling_errors_are_misses_not_crashes(
        self, cache_dir, study, monkeypatch, exc
    ):
        def _explode(*args, **kwargs):
            raise exc

        monkeypatch.setattr(cache, "_load_table", _explode)
        assert cache.load_study(study.config) is None

    def test_injected_load_failure_is_a_miss(self, cache_dir, study):
        faults.configure("cache.load:fail@1")
        assert cache.load_study(study.config) is None
        # Entry was quarantined; the next lookup is a plain (absent) miss.
        assert cache.load_study(study.config) is None


class TestCacheConcurrency:
    def test_entry_size_survives_concurrent_delete(self, tmp_path, monkeypatch):
        entry = tmp_path / "entry"
        entry.mkdir()
        (entry / "a.npz").write_bytes(b"x" * 100)
        real_iterdir = Path.iterdir

        def racing_iterdir(self):
            yield from real_iterdir(self)
            # A file listed, then evicted before stat().
            yield self / "ghost.npz"

        monkeypatch.setattr(Path, "iterdir", racing_iterdir)
        assert cache._entry_size_bytes(entry) == 100

    def test_list_entries_tolerates_racing_eviction(self, cache_dir, monkeypatch):
        real_iterdir = Path.iterdir

        def racing_iterdir(self):
            yield from real_iterdir(self)
            if self == cache_dir:
                yield self / "evicted-entry"

        monkeypatch.setattr(Path, "iterdir", racing_iterdir)
        entries = cache.list_entries()
        assert len(entries) >= 1
        assert all("size_bytes" in e for e in entries)

    def test_list_entries_skips_temp_and_quarantine_dirs(self, cache_dir):
        (cache_dir / ".0123abcd-in-progress").mkdir()
        (cache_dir / ".quarantine-deadbeef").mkdir()
        names = {Path(e["path"]).name for e in cache.list_entries()}
        assert not any(n.startswith(".") for n in names)

    def test_clear_cache_does_not_count_temp_dirs(self, tmp_path, monkeypatch):
        root = tmp_path / "cc"
        root.mkdir()
        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(root))
        (root / "entry-a").mkdir()
        (root / "entry-b").mkdir()
        (root / ".0123abcd-tmp42").mkdir()
        (root / ".quarantine-ff00").mkdir()
        assert cache.clear_cache() == 2
        assert not any(root.iterdir())  # temp dirs swept, just not counted


class TestPoolFaults:
    def test_spawn_failure_is_retried(self):
        faults.configure("pool.spawn:fail@1")
        retries = obs.counter("parallel.pool_retries")
        fallbacks = obs.counter("parallel.serial_fallback")
        r0, f0 = retries.value, fallbacks.value
        items = list(range(64))
        assert map_chunks(_square, items, workers=2) == [x * x for x in items]
        assert retries.value == r0 + 1
        assert fallbacks.value == f0  # the retry succeeded: no degradation

    def test_spawn_failure_exhausts_retries_then_falls_back_once(self):
        faults.configure("pool.spawn:fail")
        retries = obs.counter("parallel.pool_retries")
        fallbacks = obs.counter("parallel.serial_fallback")
        r0, f0 = retries.value, fallbacks.value
        items = list(range(64))
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(_square, items, workers=2)
        assert result == [x * x for x in items]
        assert fallbacks.value == f0 + 1  # exactly one fallback
        assert retries.value == r0 + parallel._POOL_SPAWN_ATTEMPTS - 1

    def test_chunk_crash_falls_back_with_identical_results(self):
        faults.configure("pool.chunk:fail@1")
        fallbacks = obs.counter("parallel.serial_fallback")
        f0 = fallbacks.value
        items = list(range(64))
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(_square, items, workers=2)
        assert result == [x * x for x in items]
        assert fallbacks.value == f0 + 1

    def test_chunk_hang_times_out_and_falls_back(self):
        faults.configure("pool.chunk:hang")
        timeouts = obs.counter("parallel.timeout")
        t0 = timeouts.value
        items = list(range(64))
        start = time.monotonic()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(_square, items, workers=2, timeout=0.5)
        assert result == [x * x for x in items]
        assert timeouts.value == t0 + 1
        assert time.monotonic() - start < parallel._HANG_SLEEP_S

    def test_timeout_env_parsing(self, monkeypatch):
        monkeypatch.delenv(parallel.POOL_TIMEOUT_ENV, raising=False)
        assert parallel.chunk_timeout() is None
        assert parallel.chunk_timeout(2.5) == 2.5
        monkeypatch.setenv(parallel.POOL_TIMEOUT_ENV, "7.5")
        assert parallel.chunk_timeout() == 7.5
        monkeypatch.setenv(parallel.POOL_TIMEOUT_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="chunk timeouts disabled"):
            assert parallel.chunk_timeout() is None

    def test_mapped_function_error_propagates_without_double_execution(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_CALLS_DIR_ENV, str(tmp_path))
        fallbacks = obs.counter("parallel.serial_fallback")
        f0 = fallbacks.value
        with pytest.raises(ValueError, match="boom at 13"):
            map_chunks(_record_then_maybe_boom, list(range(64)), workers=2)
        # Not mislabeled a pool failure; nothing re-executed serially.
        assert fallbacks.value == f0
        counts = {p.name: len(p.read_text()) for p in tmp_path.iterdir()}
        assert counts["13"] == 1
        assert all(c == 1 for c in counts.values()), counts

    def test_mapped_function_error_propagates_serially_too(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_CALLS_DIR_ENV, str(tmp_path))
        with pytest.raises(ValueError, match="boom at 13"):
            map_chunks(_record_then_maybe_boom, list(range(64)), workers=1)


class TestStudyUnderFaults:
    def test_study_identical_under_pool_faults(self, monkeypatch, study):
        # First pool-spawn attempt fails (recovered by retry), then every
        # worker's first chunk crashes (recovered by the serial fallback):
        # the built study must not differ by a byte.
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        faults.configure("pool.spawn:fail@1,pool.chunk:fail@1")
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            faulted = build_study("tiny", seed=7, cache=False)
        assert _studies_equal(faulted, study)


class TestDatasetSaveFaults:
    def test_failed_save_leaves_no_manifest(self, tmp_path, released):
        from repro.dataset import StoreError, load_dataset, save_dataset

        target = tmp_path / "ds"
        faults.configure("dataset.save:fail@1")
        with pytest.raises(faults.InjectedFault):
            save_dataset(released, target)
        assert not (target / "manifest.json").exists()
        with pytest.raises(StoreError, match="no manifest.json"):
            load_dataset(target)
        # Fault consumed: the retry succeeds and round-trips.
        save_dataset(released, target)
        loaded = load_dataset(target)
        assert loaded.instances.num_rows == released.instances.num_rows

    def test_failed_resave_removes_stale_manifest(self, tmp_path, released):
        from repro.dataset import save_dataset

        target = tmp_path / "ds"
        save_dataset(released, target)
        assert (target / "manifest.json").exists()
        faults.configure("dataset.save:fail@1")
        with pytest.raises(faults.InjectedFault):
            save_dataset(released, target)
        # A failed overwrite must not leave the stale manifest pointing at
        # a half-rewritten directory.
        assert not (target / "manifest.json").exists()


class TestCliFaults:
    def test_invalid_spec_is_rejected(self, capsys):
        from repro import cli

        assert cli.main(["report", "--scale", "tiny", "--faults", "bogus"]) == 2
        assert "invalid --faults spec" in capsys.readouterr().err

    def test_faulted_export_matches_clean_export(self, tmp_path, monkeypatch):
        from repro import cli

        monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cc"))
        clean, faulted = tmp_path / "clean", tmp_path / "faulted"
        assert cli.main(
            ["simulate", "--scale", "tiny", "--seed", "7", "--out", str(clean)]
        ) == 0
        # The second run finds its cache entry corrupted mid-load and must
        # quarantine + rebuild, exporting the identical dataset.
        assert cli.main(
            [
                "simulate", "--scale", "tiny", "--seed", "7",
                "--faults", "cache.load:corrupt@1", "--out", str(faulted),
            ]
        ) == 0
        for name in ("manifest.json", "batch_catalog.csv", "instances.csv"):
            assert (clean / name).read_bytes() == (faulted / name).read_bytes()
        clean_html = sorted(p.name for p in (clean / "html").iterdir())
        faulted_html = sorted(p.name for p in (faulted / "html").iterdir())
        assert clean_html == faulted_html
