"""Tests for §5 worker analyses and the §4.9 prediction study."""

import numpy as np
import pytest

from repro.analysis import prediction as pred
from repro.analysis import workers as wk


class TestSourceStatistics:
    @pytest.fixture(scope="class")
    def stats(self, released):
        return wk.source_statistics(released)

    def test_counts_conserve(self, stats, released):
        assert stats["num_tasks"].sum() == released.instances.num_rows

    def test_workers_counted_once_per_source(self, stats, released):
        total_workers = len(set(released.instances["worker_id"]))
        # A worker belongs to exactly one source.
        assert stats["num_workers"].sum() == total_workers

    def test_trust_in_unit_interval(self, stats):
        assert np.all((stats["mean_trust"] >= 0) & (stats["mean_trust"] <= 1))

    def test_relative_time_centered_near_one(self, stats, released):
        # The instance-weighted average of relative task time is near 1 by
        # construction (normalization by batch medians).
        weighted = np.average(
            stats["mean_relative_task_time"], weights=stats["num_tasks"]
        )
        assert 0.7 <= weighted <= 2.5

    def test_amt_is_slow_if_present(self, stats):
        rows = {r["source"]: r for r in stats.to_rows()}
        if "amt" not in rows:
            pytest.skip("amt not sampled at tiny scale")
        others = [
            r["mean_relative_task_time"] for s, r in rows.items() if s != "amt"
        ]
        assert rows["amt"]["mean_relative_task_time"] > np.median(others)

    def test_top_sources_ordering(self, stats):
        top = wk.top_sources(stats, by="num_workers", top=5)
        values = list(top["num_workers"])
        assert values == sorted(values, reverse=True)

    def test_source_share_bounds(self, stats):
        names = [s for s in stats["source"]]
        assert wk.source_share(stats, names, of="num_tasks") == pytest.approx(1.0)
        assert wk.source_share(stats, [], of="num_tasks") == 0.0


class TestActiveSources:
    def test_bounded_by_total_sources(self, study, released):
        series = wk.active_sources_per_week(
            released, num_weeks=study.config.num_weeks
        )
        assert series.max() <= 139
        assert series.sum() > 0


class TestGeography:
    def test_descending_counts(self, released):
        counts = wk.country_distribution(released)
        values = list(counts["num_workers"])
        assert values == sorted(values, reverse=True)

    def test_us_at_top(self, released):
        counts = wk.country_distribution(released)
        assert counts.row(0)["country"] == "United States"


class TestWorkerProfiles:
    @pytest.fixture(scope="class")
    def profiles(self, released):
        return wk.worker_profiles(released)

    def test_tasks_conserve(self, profiles, released):
        assert profiles.num_tasks.sum() == released.instances.num_rows

    def test_lifetime_at_least_one_day(self, profiles):
        assert profiles.lifetime_days.min() >= 1

    def test_working_days_bounded_by_lifetime(self, profiles):
        assert np.all(profiles.working_days <= profiles.lifetime_days)

    def test_fraction_of_lifetime_bounded(self, profiles):
        fraction = profiles.fraction_of_lifetime_active()
        assert np.all((fraction > 0) & (fraction <= 1.0))

    def test_hours_positive(self, profiles):
        assert np.all(profiles.total_hours > 0)

    def test_concentration_shapes(self, profiles):
        conc = wk.workload_concentration(profiles)
        assert conc.top10_task_share > 0.6  # paper: > 0.8
        assert 0.3 <= conc.one_day_worker_fraction <= 0.75  # paper: 0.527
        assert conc.one_day_task_share < 0.10  # paper: 0.024
        assert conc.active_task_share > 0.7  # paper: 0.83

    def test_rank_curve_descending(self, profiles):
        curve = wk.workload_rank_curve(profiles)
        assert np.all(np.diff(curve) <= 0)


class TestPredictionStudy:
    @pytest.fixture(scope="class")
    def outcomes(self, enriched):
        return pred.run_prediction_study(enriched)

    def test_six_outcomes(self, outcomes):
        assert len(outcomes) == 6
        keys = {(o.metric, o.strategy) for o in outcomes}
        assert keys == {
            (m, s)
            for m in ("disagreement", "task_time", "pickup_time")
            for s in ("range", "percentile")
        }

    def test_accuracies_are_probabilities(self, outcomes):
        for o in outcomes:
            assert 0.0 <= o.exact_accuracy <= 1.0
            assert o.within_one_accuracy >= o.exact_accuracy

    def test_range_bucketization_is_skewed_and_easy(self, outcomes):
        """§4.9: range buckets are dominated by bucket 0, so accuracy for the
        time metrics is very high."""
        for o in outcomes:
            if o.strategy != "range":
                continue
            if o.metric in ("task_time", "pickup_time"):
                # Heavy right skew piles everything into bucket 0.  At tiny
                # scale the skew is milder than the paper's, so assert the
                # tree is at least competitive with the majority class; the
                # medium-scale benchmark checks the paper's 95%+ accuracy.
                counts = o.bucketization.bucket_counts()
                assert counts[0] == counts.max()
                majority = counts.max() / counts.sum()
                assert o.exact_accuracy > 0.6 * majority

    def test_percentile_bucketization_is_harder(self, outcomes):
        by_key = {(o.metric, o.strategy): o for o in outcomes}
        for metric in ("task_time", "pickup_time"):
            assert (
                by_key[(metric, "percentile")].exact_accuracy
                <= by_key[(metric, "range")].exact_accuracy
            )

    def test_percentile_beats_random_guessing(self, outcomes):
        for o in outcomes:
            if o.strategy == "percentile":
                assert o.within_one_accuracy > 0.15  # random ~0.27 for ±1 of 10
