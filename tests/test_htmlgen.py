"""Round-trip tests: rendered interfaces must yield their design features."""

import numpy as np
import pytest

from repro.html import extract_features
from repro.htmlgen import render_task_html
from repro.taxonomy.labels import DataType, Goal, Operator


def render(**overrides):
    defaults = dict(
        title="Label tweet sentiment",
        goals=(Goal.SENTIMENT_ANALYSIS,),
        operators=(Operator.FILTER,),
        data_types=(DataType.TEXT,),
        num_words=400,
        num_text_boxes=0,
        num_examples=0,
        num_images=0,
        num_choices=3,
        template_salt=12345,
        item_token="unit-00000001",
    )
    defaults.update(overrides)
    return render_task_html(**defaults)


class TestFeatureRoundTrip:
    @pytest.mark.parametrize("n", [0, 1, 3])
    def test_text_boxes_exact(self, n):
        f = extract_features(render(num_text_boxes=n))
        assert f.num_text_boxes == n

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_examples_exact(self, n):
        f = extract_features(render(num_examples=n))
        assert f.num_examples == n

    @pytest.mark.parametrize("n", [0, 1, 4])
    def test_images_exact(self, n):
        f = extract_features(render(num_images=n))
        assert f.num_images == n

    def test_image_datatype_counts_toward_images(self):
        html = render(data_types=(DataType.IMAGE,), num_images=2)
        f = extract_features(html)
        assert f.num_images == 2  # 1 item img + 1 asset img

    @pytest.mark.parametrize("target", [100, 466, 2000, 8000])
    def test_word_count_approximate(self, target):
        f = extract_features(render(num_words=target))
        assert abs(f.num_words - target) <= max(60, 0.15 * target)

    def test_instructions_present(self):
        assert extract_features(render()).has_instructions

    def test_radio_buttons_for_click_tasks(self):
        f = extract_features(render(num_choices=4))
        assert f.num_radio_buttons == 4

    def test_text_response_tasks_skip_radios(self):
        html = render(
            operators=(Operator.GATHER,), num_text_boxes=2, num_choices=4
        )
        f = extract_features(html)
        assert f.num_radio_buttons == 0
        assert f.num_text_boxes == 2


class TestTemplateStability:
    def test_same_task_same_template(self):
        a = render(item_token="unit-1")
        b = render(item_token="unit-2")
        # Identical except for the embedded item token.
        assert a.replace("unit-1", "X") == b.replace("unit-2", "X")

    def test_different_salt_different_text(self):
        a = render(template_salt=1)
        b = render(template_salt=2)
        assert a != b

    def test_all_goals_render(self):
        for goal in Goal:
            html = render(goals=(goal,))
            assert "<html>" in html

    def test_all_operators_render(self):
        for op in Operator:
            html = render(operators=(op,))
            assert extract_features(html).num_words > 0

    def test_all_data_types_render(self):
        for dt in DataType:
            html = render(data_types=(dt,))
            assert "<html>" in html

    def test_multi_datatype_renders_all_snippets(self):
        html = render(data_types=(DataType.TEXT, DataType.AUDIO))
        assert "<audio" in html and "item-text" in html
