"""Engine-level invariants and calibrated-shape tests on the tiny study."""

import numpy as np
import pytest

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import simulate_marketplace
from repro.simulator.workers import ONE_DAY
from repro.stats.timeseries import WEEK_SECONDS


class TestSchemaInvariants:
    def test_instance_references_valid(self, state):
        log = state.instances
        assert log.batch_idx.max() < state.batches.num_batches
        assert log.worker_id.max() < state.workers.num_workers
        assert log.task_idx.max() < state.tasks.num_tasks

    def test_times_ordered(self, state):
        log = state.instances
        assert np.all(log.end_time > log.start_time)
        batch_start = state.batches.start_time[log.batch_idx]
        assert np.all(log.start_time >= batch_start)

    def test_times_within_horizon(self, state):
        horizon = state.config.num_weeks * WEEK_SECONDS
        assert np.all(state.instances.start_time < horizon)

    def test_trust_in_unit_interval(self, state):
        assert np.all((state.instances.trust >= 0) & (state.instances.trust <= 1))

    def test_instances_match_batch_sizes(self, state):
        counts = np.bincount(
            state.instances.batch_idx, minlength=state.batches.num_batches
        )
        assert np.array_equal(counts, state.batches.num_instances)

    def test_item_ids_belong_to_one_batch(self, state):
        log = state.instances
        pairs = {}
        for item, batch in zip(log.item_id[:5000], log.batch_idx[:5000]):
            if item in pairs:
                assert pairs[item] == batch
            else:
                pairs[item] = batch

    def test_each_item_has_redundancy_answers(self, state):
        log = state.instances
        item_counts = np.bincount(log.item_id)
        item_counts = item_counts[item_counts > 0]
        redundancy_values = set(state.batches.redundancy.tolist())
        assert set(np.unique(item_counts)) <= redundancy_values

    def test_responses_are_strings(self, state):
        sample = state.instances.response[:100]
        assert all(isinstance(r, str) and r for r in sample)

    def test_task_of_instance_consistent(self, state):
        log = state.instances
        assert np.array_equal(
            log.task_idx, state.batches.task_idx[log.batch_idx]
        )


class TestDeterminism:
    def test_same_seed_same_world(self):
        cfg = SimulationConfig(
            seed=123, num_distinct_tasks=12, num_workers=60, instance_scale=0.05
        )
        a = simulate_marketplace(cfg)
        b = simulate_marketplace(cfg)
        assert np.array_equal(a.instances.start_time, b.instances.start_time)
        assert np.array_equal(a.instances.worker_id, b.instances.worker_id)
        assert all(x == y for x, y in zip(a.instances.response, b.instances.response))

    def test_different_seed_different_world(self):
        base = SimulationConfig(
            seed=1, num_distinct_tasks=12, num_workers=60, instance_scale=0.05
        )
        a = simulate_marketplace(base)
        b = simulate_marketplace(base.with_seed(2))
        assert a.instances.num_instances != b.instances.num_instances or not np.array_equal(
            a.instances.start_time, b.instances.start_time
        )


class TestCalibratedShapes:
    """The generative effects the analyses must later recover."""

    def test_regime_switch_in_arrivals(self, state):
        weeks = state.batches.start_time // WEEK_SECONDS
        weekly = np.bincount(
            weeks, weights=state.batches.num_instances.astype(float),
            minlength=state.config.num_weeks,
        )
        switch = state.config.regime_switch_week
        assert weekly[switch:].sum() > 10 * weekly[:switch].sum()

    def test_one_day_workers_realized_near_half(self, state):
        log = state.instances
        days = log.start_time // 86400
        order = np.argsort(log.worker_id, kind="stable")
        wid = log.worker_id[order]
        d = days[order]
        starts = np.flatnonzero(np.r_[True, wid[1:] != wid[:-1]])
        ends = np.r_[starts[1:], len(wid)]
        one_day = sum(
            1 for s, e in zip(starts, ends) if d[s:e].max() == d[s:e].min()
        )
        fraction = one_day / len(starts)
        assert 0.35 <= fraction <= 0.70  # paper: 0.527

    def test_top10_workers_dominate(self, state):
        counts = np.bincount(state.instances.worker_id)
        counts = counts[counts > 0]
        top = np.sort(counts)[::-1][: max(1, len(counts) // 10)]
        assert top.sum() / counts.sum() > 0.7  # paper: > 0.8

    def test_pickup_dominates_task_time(self, state):
        log = state.instances
        pickup = log.start_time - state.batches.start_time[log.batch_idx]
        duration = log.end_time - log.start_time
        assert np.median(pickup) > 5 * np.median(duration)

    def test_subjective_tasks_all_unique_responses(self, state):
        subjective_tasks = np.flatnonzero(state.tasks.subjective)
        if subjective_tasks.size == 0:
            pytest.skip("no subjective tasks at this scale/seed")
        t = subjective_tasks[0]
        mask = state.instances.task_idx == t
        responses = state.instances.response[mask]
        assert len(set(responses)) == len(responses)

    def test_internal_source_small_share(self, state):
        internal = state.sources.index_of("internal")
        share = (
            state.workers.source_idx[state.instances.worker_id] == internal
        ).mean()
        assert share < 0.15  # paper: ~2%

    def test_weekday_effect(self, state):
        days = (state.batches.start_time // 86400) % 7
        weights = state.batches.num_instances.astype(float)
        totals = np.bincount(days, weights=weights, minlength=7)
        assert totals[:5].mean() > totals[5:].mean()


class TestChoicePool:
    """The vectorized answer-string pool matches per-task choice_strings."""

    def test_matches_choice_strings_per_task(self):
        from repro.simulator.answers import choice_strings
        from repro.simulator.engine import _build_choice_pool

        rng = np.random.default_rng(17)
        for _ in range(20):
            n = int(rng.integers(1, 60))
            num_choices = rng.integers(2, 9, size=n)
            textual = rng.random(n) < 0.3
            pool, offsets = _build_choice_pool(num_choices, textual)
            assert len(pool) == int(num_choices.sum())
            for t in range(n):
                expected = choice_strings(
                    t, int(num_choices[t]), bool(textual[t])
                )
                start = int(offsets[t])
                got = list(pool[start:start + int(num_choices[t])])
                assert got == expected

    def test_all_binary(self):
        from repro.simulator.engine import _build_choice_pool

        pool, offsets = _build_choice_pool(
            np.array([2, 2, 2]), np.array([False, False, False])
        )
        assert list(pool) == ["yes", "no"] * 3
        assert list(offsets) == [0, 2, 4]

    def test_all_textual(self):
        from repro.simulator.engine import _build_choice_pool

        pool, _ = _build_choice_pool(np.array([3]), np.array([True]))
        assert list(pool) == [
            "task0_answer_0", "task0_answer_1", "task0_answer_2",
        ]
