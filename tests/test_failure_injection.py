"""Failure-injection and invariance tests for the enrichment pipeline.

The released data in the wild is messy: truncated HTML, arbitrary row
order, stray batches with one instance.  The pipeline must degrade
gracefully, and its outputs must be invariant to row order (nothing in the
paper's methodology depends on how the dump was sorted).
"""

import numpy as np
import pytest

from repro.dataset.release import ReleasedDataset
from repro.enrichment.design import extract_design_parameters
from repro.enrichment.metrics import compute_batch_metrics
from repro.enrichment.pipeline import enrich_dataset
from repro.tables import Table


class TestRowOrderInvariance:
    def test_metrics_invariant_to_instance_order(self, released):
        shuffled = ReleasedDataset(
            batch_catalog=released.batch_catalog,
            batch_html=released.batch_html,
            instances=released.instances.take(
                np.random.default_rng(0).permutation(released.instances.num_rows)
            ),
        )
        original = compute_batch_metrics(released)
        reordered = compute_batch_metrics(shuffled)
        assert np.array_equal(original["batch_id"], reordered["batch_id"])
        assert np.allclose(
            original["disagreement"], reordered["disagreement"], equal_nan=True
        )
        assert np.allclose(original["task_time"], reordered["task_time"])
        assert np.allclose(original["pickup_time"], reordered["pickup_time"])

    def test_full_enrichment_invariant_to_instance_order(self, released, study):
        shuffled = ReleasedDataset(
            batch_catalog=released.batch_catalog,
            batch_html=released.batch_html,
            instances=released.instances.take(
                np.random.default_rng(1).permutation(released.instances.num_rows)
            ),
        )
        enriched = enrich_dataset(shuffled, study.config)
        assert enriched.num_clusters == study.enriched.num_clusters
        a = study.enriched.cluster_table.sort_by("cluster_id")
        b = enriched.cluster_table.sort_by("cluster_id")
        assert np.allclose(a["disagreement"], b["disagreement"], equal_nan=True)


class TestMalformedHtml:
    def test_truncated_html_still_extracts(self, released):
        batch_id = next(iter(released.batch_html))
        html = dict(released.batch_html)
        html[batch_id] = html[batch_id][: len(html[batch_id]) // 3]
        table = extract_design_parameters({batch_id: html[batch_id]})
        assert table.num_rows == 1
        assert table.row(0)["num_words"] >= 0

    def test_garbage_html_extracts_zeros(self):
        table = extract_design_parameters({0: "<<<>>>not html at all &&&"})
        assert table.row(0)["num_text_boxes"] == 0

    def test_enrichment_survives_one_corrupted_interface(self, released, study):
        html = dict(released.batch_html)
        victim = next(iter(html))
        html[victim] = "<div>corrupted"
        damaged = ReleasedDataset(
            batch_catalog=released.batch_catalog,
            batch_html=html,
            instances=released.instances,
        )
        enriched = enrich_dataset(damaged, study.config)
        # The corrupted batch lands in its own cluster; everything else holds.
        assert enriched.num_clusters >= study.enriched.num_clusters


class TestDegenerateData:
    def _single_batch_release(self, responses, item_ids):
        n = len(responses)
        instances = Table(
            {
                "instance_id": list(range(n)),
                "batch_id": [0] * n,
                "item_id": item_ids,
                "worker_id": list(range(n)),
                "source": ["neodev"] * n,
                "country": ["United States"] * n,
                "start_time": [100 + i for i in range(n)],
                "end_time": [200 + i for i in range(n)],
                "trust": [0.9] * n,
                "response": responses,
            }
        )
        catalog = Table(
            {
                "batch_id": [0],
                "title": ["t"],
                "created_at": [0],
                "sampled": [True],
            }
        )
        return ReleasedDataset(
            batch_catalog=catalog, batch_html={0: "<p>x</p>"}, instances=instances
        )

    def test_single_instance_batch(self):
        released = self._single_batch_release(["a"], [0])
        metrics = compute_batch_metrics(released)
        assert metrics.num_rows == 1
        assert np.isnan(metrics.row(0)["disagreement"])
        assert metrics.row(0)["task_time"] == 100.0

    def test_all_identical_responses(self):
        released = self._single_batch_release(["a", "a", "a"], [0, 0, 0])
        metrics = compute_batch_metrics(released)
        assert metrics.row(0)["disagreement"] == 0.0

    def test_all_distinct_responses(self):
        released = self._single_batch_release(["a", "b", "c"], [0, 0, 0])
        metrics = compute_batch_metrics(released)
        assert metrics.row(0)["disagreement"] == 1.0

    def test_multiple_items_mixed(self):
        released = self._single_batch_release(
            ["a", "a", "x", "y"], [0, 0, 1, 1]
        )
        metrics = compute_batch_metrics(released)
        # Item 0 agrees (0.0), item 1 disagrees (1.0) -> batch average 0.5.
        assert metrics.row(0)["disagreement"] == pytest.approx(0.5)
