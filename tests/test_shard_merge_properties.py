"""Property-based laws for the shard merge kernels.

Hypothesis generates arbitrary partitionings of arbitrary data and checks
the algebra :mod:`repro.shard.merge` documents:

- **Partition invariance**: however the rows are split into parts, the
  merged group-by finalizes to the same bytes as one-shot accumulation.
- **Associativity / commutativity**: any merge tree and any merge order
  produce the same bytes.
- **Agreement with the in-memory ``group_by``**: exact for counts, order
  statistics, and extrema; within one ulp-scale tolerance for float sums
  (``group_by`` accumulates in row order, the mergeable algebra pools and
  uses :func:`math.fsum`).

The same partition-invariance law is pinned for the CDF and histogram
merge kernels, and the two-level clustering is checked to recover at
least the near-duplicate pairs the single-level pass finds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.shard.cluster import cluster_batches_two_level
from repro.shard.merge import MergeableGroupBy, merge_group_by
from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram, linear_histogram
from repro.tables import Table, group_by

SPEC = {
    "n": ("x", "count"),
    "lo": ("x", "min"),
    "hi": ("x", "max"),
    "total": ("x", "sum"),
    "avg": ("x", "mean"),
    "mid": ("x", "median"),
    "p90": ("x", "p90"),
    "distinct": ("x", "nunique"),
}

# Finite floats without signed zeros (0.0 vs -0.0 share a multiset slot
# but differ in bytes, which would flag min/max as false mismatches).
_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=False
).map(lambda v: v + 0.0 if v != 0 else 0.0)

_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), _values),
    min_size=1,
    max_size=60,
)


def _table(rows) -> Table:
    return Table({
        "batch_id": np.array([k for k, _ in rows], dtype=np.int64),
        "x": np.array([v for _, v in rows], dtype=np.float64),
    })


def _partition(rows, cut_points):
    parts, last = [], 0
    for cut in sorted(set(cut_points)):
        if last < cut < len(rows):
            parts.append(rows[last:cut])
            last = cut
    parts.append(rows[last:])
    return [part for part in parts if part]


def _finalized_bytes(result: Table) -> dict[str, bytes]:
    return {name: np.asarray(result[name]).tobytes() for name in result.column_names}


class TestMergeableGroupByLaws:
    @given(
        rows=_rows,
        cuts=st.lists(st.integers(min_value=1, max_value=59), max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_partition_invariance(self, rows, cuts):
        whole = MergeableGroupBy("batch_id", SPEC).update(_table(rows))
        parts = _partition(rows, cuts)
        split = merge_group_by([_table(p) for p in parts], "batch_id", SPEC)
        assert _finalized_bytes(split) == _finalized_bytes(whole.finalize())

    @given(
        rows=_rows,
        cuts=st.lists(st.integers(min_value=1, max_value=59), max_size=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=150, deadline=None)
    def test_merge_order_and_association_invariance(self, rows, cuts, seed):
        parts = _partition(rows, cuts)
        partials = lambda: [  # noqa: E731 - tiny local factory
            MergeableGroupBy("batch_id", SPEC).update(_table(p)) for p in parts
        ]

        left = partials()
        left_acc = left[0]
        for other in left[1:]:  # ((a . b) . c) . ...
            left_acc = left_acc.merge(other)

        right = partials()
        right_acc = right[-1]
        for other in reversed(right[:-1]):  # a . (b . (c . ...))
            other.merge(right_acc)
            right_acc = other

        shuffled = partials()
        order = np.random.default_rng(seed).permutation(len(shuffled))
        shuffled_acc = shuffled[order[0]]
        for i in order[1:]:
            shuffled_acc = shuffled_acc.merge(shuffled[int(i)])

        reference = _finalized_bytes(left_acc.finalize())
        assert _finalized_bytes(right_acc.finalize()) == reference
        assert _finalized_bytes(shuffled_acc.finalize()) == reference

    @given(rows=_rows)
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_in_memory_group_by(self, rows):
        table = _table(rows)
        merged = MergeableGroupBy("batch_id", SPEC).update(table).finalize()
        reference = group_by(table, "batch_id").agg(SPEC)
        assert np.array_equal(merged["batch_id"], reference["batch_id"])
        for exact in ("n", "lo", "hi", "mid", "p90", "distinct"):
            assert np.array_equal(merged[exact], reference[exact]), exact
        for pooled in ("total", "avg"):
            assert np.allclose(
                merged[pooled], reference[pooled], rtol=1e-12, atol=1e-9
            ), pooled

    def test_rejects_non_mergeable_aggregation(self):
        with pytest.raises(ValueError, match="not mergeable"):
            MergeableGroupBy("batch_id", {"f": ("x", "first")})

    def test_rejects_mismatched_specs(self):
        a = MergeableGroupBy("batch_id", {"n": ("x", "count")})
        b = MergeableGroupBy("batch_id", {"n": ("x", "sum")})
        with pytest.raises(ValueError, match="different specs"):
            a.merge(b)


class TestStatsMergeLaws:
    @given(
        values=st.lists(_values, min_size=1, max_size=80),
        cuts=st.lists(st.integers(min_value=1, max_value=79), max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_cdf_merge_partition_invariant(self, values, cuts):
        whole = EmpiricalCDF.from_sample(values)
        parts = _partition(values, cuts)
        merged = EmpiricalCDF.merge(
            [EmpiricalCDF.from_sample(p) for p in parts]
        )
        assert merged.support.tobytes() == whole.support.tobytes()
        assert merged.probabilities.tobytes() == whole.probabilities.tobytes()

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        cuts=st.lists(st.integers(min_value=1, max_value=79), max_size=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_histogram_merge_partition_invariant(self, values, cuts):
        whole = linear_histogram(values, bins=10, lo=0.0, hi=100.0)
        parts = _partition(values, cuts)
        merged = Histogram.merge([
            linear_histogram(p, bins=10, lo=0.0, hi=100.0) for p in parts
        ])
        assert merged.edges.tobytes() == whole.edges.tobytes()
        assert merged.counts.tobytes() == whole.counts.tobytes()

    def test_histogram_merge_rejects_mismatched_edges(self):
        a = linear_histogram([1.0], bins=4, lo=0.0, hi=10.0)
        b = linear_histogram([1.0], bins=4, lo=0.0, hi=20.0)
        with pytest.raises(ValueError, match="edges"):
            Histogram.merge([a, b])

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.merge([])
        with pytest.raises(ValueError):
            Histogram.merge([])


def _near_duplicate_corpus(
    num_groups: int, group_size: int, seed: int
) -> tuple[dict[int, str], set[tuple[int, int]]]:
    """HTML-ish documents in near-duplicate groups, plus the true pairs.

    Members of a group share a long template and differ by one short
    mutated sentence — the regime HTML template reuse produces, where any
    member is representative of its group.
    """
    rng = np.random.default_rng(seed)
    vocabulary = [f"word{i}" for i in range(400)]
    corpus: dict[int, str] = {}
    true_pairs: set[tuple[int, int]] = set()
    batch_id = 0
    for group in range(num_groups):
        template = " ".join(rng.choice(vocabulary, size=120))
        members = []
        for member in range(group_size):
            mutation = " ".join(rng.choice(vocabulary, size=3))
            corpus[batch_id] = (
                f"<html><body><p>{template}</p>"
                f"<p>g{group} {mutation}</p></body></html>"
            )
            members.append(batch_id)
            batch_id += 1
        true_pairs.update(
            (a, b) for i, a in enumerate(members) for b in members[i + 1:]
        )
    return corpus, true_pairs


def _clustered_pairs(assignment: dict[int, int]) -> set[tuple[int, int]]:
    members: dict[int, list[int]] = {}
    for batch_id, cluster in assignment.items():
        members.setdefault(cluster, []).append(batch_id)
    pairs: set[tuple[int, int]] = set()
    for group in members.values():
        group.sort()
        pairs.update(
            (a, b) for i, a in enumerate(group) for b in group[i + 1:]
        )
    return pairs


class TestTwoLevelClustering:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_recall_at_least_single_level(self, num_shards):
        from repro.enrichment.clustering import cluster_batches

        corpus, true_pairs = _near_duplicate_corpus(
            num_groups=12, group_size=6, seed=5
        )
        single = cluster_batches(corpus)
        two_level = cluster_batches_two_level(corpus, num_shards=num_shards)
        single_recall = (
            len(_clustered_pairs(single) & true_pairs) / len(true_pairs)
        )
        two_recall = (
            len(_clustered_pairs(two_level) & true_pairs) / len(true_pairs)
        )
        assert two_recall >= single_recall
        assert two_recall > 0.9

    def test_single_shard_matches_single_level(self):
        from repro.enrichment.clustering import cluster_batches

        corpus, _ = _near_duplicate_corpus(num_groups=6, group_size=4, seed=9)
        assert cluster_batches_two_level(corpus, num_shards=1) == (
            cluster_batches(corpus)
        )

    def test_numbering_dense_and_order_of_first_appearance(self):
        corpus, _ = _near_duplicate_corpus(num_groups=5, group_size=3, seed=2)
        assignment = cluster_batches_two_level(corpus, num_shards=3)
        seen: list[int] = []
        for batch_id in sorted(assignment):
            cluster = assignment[batch_id]
            if cluster not in seen:
                seen.append(cluster)
        assert seen == list(range(len(seen)))

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            cluster_batches_two_level({0: "<p>x</p>"}, num_shards=0)
        with pytest.raises(ValueError):
            cluster_batches_two_level(
                {0: "<p>x</p>"}, num_shards=2, num_perm=10, bands=3
            )
