"""Property tests: segment-vectorized group-by kernels vs a naive reference.

The vectorized ``median`` / ``std`` / ``p<NN>`` / ``nunique`` kernels in
:mod:`repro.tables.groupby` operate on sorted group segments with
``reduceat`` / fancy indexing.  Each is checked here against the obvious
per-group numpy reference (boolean-mask the group, call the numpy
function) on randomized tables, including the awkward shapes: NaN values,
object columns, single-row groups, and all-identical keys.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables import Table, group_by

_KEY_POOL = ["a", "b", "c", "d", "e"]


def _naive_aggregate(table: Table, key: str, column: str, spec: str):
    """Per-group reference using plain numpy on boolean masks."""
    keys = table[key]
    values = table[column]
    out = {}
    for k in dict.fromkeys(keys.tolist()):  # first-appearance order
        group = values[keys == k]
        if spec == "median":
            out[k] = float(np.median(group.astype(np.float64)))
        elif spec == "std":
            out[k] = float(group.astype(np.float64).std())
        elif spec.startswith("p"):
            out[k] = float(
                np.percentile(group.astype(np.float64), float(spec[1:]))
            )
        elif spec == "nunique":
            if group.dtype == object:
                out[k] = len(set(group.tolist()))
            else:
                finite = group[~np.isnan(group)] if np.issubdtype(
                    group.dtype, np.floating
                ) else group
                n = len(np.unique(finite))
                if np.issubdtype(group.dtype, np.floating) and np.isnan(
                    group
                ).any():
                    n += 1
                out[k] = n
        else:  # pragma: no cover - guard against typos in the test itself
            raise ValueError(spec)
    return out


def _grouped_dict(table: Table, key: str, column: str, spec: str):
    result = group_by(table, key).agg({"out": (column, spec)})
    return dict(zip(result[key].tolist(), result["out"].tolist()))


@st.composite
def _tables(draw, *, with_nan: bool, dtype: str = "float"):
    n = draw(st.integers(min_value=1, max_value=120))
    keys = draw(
        st.lists(st.sampled_from(_KEY_POOL), min_size=n, max_size=n)
    )
    if dtype == "float":
        elements = st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=32
        )
        if with_nan:
            elements = st.one_of(elements, st.just(float("nan")))
        values = np.array(
            draw(st.lists(elements, min_size=n, max_size=n)), dtype=np.float64
        )
    elif dtype == "int":
        values = np.array(
            draw(
                st.lists(
                    st.integers(min_value=-50, max_value=50),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.int64,
        )
    else:  # object
        values = np.array(
            draw(
                st.lists(
                    st.sampled_from(["x", "y", "z", "", "long-ish-value"]),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=object,
        )
    return Table({"k": np.array(keys, dtype=object), "v": values})


class TestOrderStatisticKernels:
    @settings(max_examples=60, deadline=None)
    @given(table=_tables(with_nan=False))
    @pytest.mark.parametrize("spec", ["median", "p25", "p50", "p90", "p99"])
    def test_matches_numpy_reference_bit_exact(self, table, spec):
        got = _grouped_dict(table, "k", "v", spec)
        expected = _naive_aggregate(table, "k", "v", spec)
        assert list(got) == list(expected)
        for k in expected:
            # Bit-exact: same lerp formula as np.percentile, not approx.
            assert got[k] == expected[k] or (
                np.isnan(got[k]) and np.isnan(expected[k])
            )

    @settings(max_examples=40, deadline=None)
    @given(table=_tables(with_nan=False, dtype="int"))
    def test_median_on_integer_columns(self, table):
        assert _grouped_dict(table, "k", "v", "median") == _naive_aggregate(
            table, "k", "v", "median"
        )

    def test_single_row_groups(self):
        table = Table(
            {
                "k": np.array(list("abcde"), dtype=object),
                "v": np.array([5.0, -1.0, 0.0, 2.5, 100.0]),
            }
        )
        for spec in ("median", "p25", "p90", "std", "nunique"):
            got = _grouped_dict(table, "k", "v", spec)
            assert got == _naive_aggregate(table, "k", "v", spec)

    def test_all_rows_one_group(self):
        rng = np.random.default_rng(11)
        table = Table(
            {
                "k": np.array(["same"] * 257, dtype=object),
                "v": rng.normal(size=257),
            }
        )
        for spec in ("median", "p25", "p50", "p90"):
            got = _grouped_dict(table, "k", "v", spec)
            assert got == _naive_aggregate(table, "k", "v", spec)


class TestStdKernel:
    @settings(max_examples=60, deadline=None)
    @given(table=_tables(with_nan=False))
    def test_matches_numpy_within_float_tolerance(self, table):
        got = _grouped_dict(table, "k", "v", "std")
        expected = _naive_aggregate(table, "k", "v", "std")
        assert list(got) == list(expected)
        for k in expected:
            # Summation order differs (sequential reduceat vs pairwise
            # umr_sum), so allow float round-off but nothing more.
            assert got[k] == pytest.approx(expected[k], rel=1e-9, abs=1e-9)


class TestNuniqueKernel:
    @settings(max_examples=60, deadline=None)
    @given(table=_tables(with_nan=True))
    def test_float_with_nan(self, table):
        assert _grouped_dict(table, "k", "v", "nunique") == _naive_aggregate(
            table, "k", "v", "nunique"
        )

    @settings(max_examples=40, deadline=None)
    @given(table=_tables(with_nan=False, dtype="int"))
    def test_integer_columns(self, table):
        assert _grouped_dict(table, "k", "v", "nunique") == _naive_aggregate(
            table, "k", "v", "nunique"
        )

    @settings(max_examples=40, deadline=None)
    @given(table=_tables(with_nan=False, dtype="object"))
    def test_object_columns(self, table):
        assert _grouped_dict(table, "k", "v", "nunique") == _naive_aggregate(
            table, "k", "v", "nunique"
        )


class TestCardinalityOverflowGuard:
    def test_many_keys_beyond_int64_capacity(self):
        # 8 keys of ~1500 uniques each: 1500**8 ≈ 2.6e25 >> int64 max.  The
        # combined-code construction must detect the overflow and
        # re-densify instead of silently wrapping.
        rng = np.random.default_rng(5)
        n = 3000
        columns = {
            f"k{i}": rng.integers(0, 1500, size=n) for i in range(8)
        }
        # Make each row's composite key unique in pairs so group count is
        # predictable: pair rows 2j and 2j+1 identical.
        for name in columns:
            col = columns[name]
            col[1::2] = col[0::2]
            columns[name] = col
        columns["v"] = np.ones(n)
        table = Table(columns)
        result = group_by(table, [f"k{i}" for i in range(8)]).agg(
            {"total": ("v", "sum")}
        )
        # Every odd row duplicates the preceding even row, so at most n/2
        # distinct composite keys (exactly n/2 with overwhelming odds).
        composites = set(
            zip(*(columns[f"k{i}"].tolist() for i in range(8)))
        )
        assert result.num_rows == len(composites)
        assert float(result["total"].sum()) == float(n)
