"""Smoke tests for the ``python -m repro`` CLI entry points.

Each test drives :func:`repro.cli.main` in-process at ``tiny`` scale and
asserts the exit code plus a few stable stdout markers — enough to catch a
broken wiring without pinning the exact report wording.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, obs


@pytest.fixture(autouse=True)
def _tracing_off():
    yield
    obs.finish()


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert out.strip() != "repro"  # some version string followed


def test_report_smoke(capsys):
    rc = cli.main(["report", "--scale", "tiny", "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "== Section 3: marketplace dynamics ==" in out
    assert "== Section 4: task design ==" in out
    assert "== Section 5: workers ==" in out
    assert "Table 1 (disagreement):" in out


def test_simulate_smoke(tmp_path, capsys):
    out_dir = tmp_path / "dataset"
    rc = cli.main([
        "simulate", "--scale", "tiny", "--seed", "7", "--out", str(out_dir),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrote" in out and "instances" in out
    assert out_dir.is_dir() and any(out_dir.iterdir())


def test_cache_smoke(capsys):
    rc = cli.main(["cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "cache dir:" in out


def test_traced_report_writes_trace(tmp_path, capsys):
    """Acceptance: a traced report prints the tree and writes a JSON trace
    covering simulate → release → enrichment → figures."""
    trace_path = tmp_path / "trace.json"
    rc = cli.main([
        "report", "--scale", "tiny", "--seed", "7", "--no-cache",
        "--trace", "--trace-out", str(trace_path),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert not obs.enabled()  # the CLI turned tracing back off
    assert "== trace ==" in out
    assert f"trace written to {trace_path}" in out
    assert "cli.report" in out and "study.build" in out

    doc = json.loads(trace_path.read_text())
    assert doc["schema"] == obs.TRACE_SCHEMA_VERSION
    names = {span["name"] for span in doc["spans"]}
    for expected in (
        "cli.report", "study.build", "simulate", "simulate.instances",
        "release", "enrichment", "enrichment.clustering", "cluster.minhash",
        "design.extract",
    ):
        assert expected in names, f"span {expected!r} missing from trace"
    assert any(name.startswith("figures.") for name in names)
    root = next(s for s in doc["spans"] if s["parent"] == -1)
    assert root["name"] == "cli.report"
    assert root["attrs"]["scale"] == "tiny"
    assert doc["metrics"]["counters"]["cluster.minhash_docs"] > 0


def test_trace_command_summarizes(tmp_path, capsys):
    obs.enable(name="unit")
    with obs.span("alpha"):
        with obs.span("beta", rows=3):
            pass
    path = obs.write_trace_json(obs.finish(), tmp_path / "t.json")

    rc = cli.main(["trace", str(path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "span" in out and "count" in out  # summary table header
    assert "alpha" in out and "beta" in out
    assert "trace 'unit': 2 spans" in out  # the tree is printed too

    rc = cli.main(["trace", str(path), "--no-tree"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace 'unit'" not in out


def test_cache_json_mode(capsys):
    rc = cli.main(["cache", "--json"])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out)
    assert {"cache_dir", "num_entries", "total_bytes", "total_instances",
            "entries", "session_counters"} <= set(doc)
    assert doc["num_entries"] == len(doc["entries"])
    for entry in doc["entries"]:
        assert {"key", "scale", "seed", "num_instances",
                "size_bytes", "path"} <= set(entry)


def test_trace_json_mode(tmp_path, capsys):
    obs.enable(name="unit")
    with obs.span("alpha"):
        with obs.span("beta"):
            pass
    obs.counter("unit.json_events").inc(2)
    path = obs.write_trace_json(obs.finish(), tmp_path / "t.json")

    rc = cli.main(["trace", str(path), "--json"])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out)
    assert doc["schema"] == obs.TRACE_SCHEMA_VERSION
    assert doc["name"] == "unit" and doc["num_spans"] == 2
    assert set(doc["spans_by_name"]) == {"alpha", "beta"}
    assert doc["counters"]["unit.json_events"] == 2
    # Only observed histograms and non-None gauges survive the filter.
    assert all(h["count"] for h in doc["histograms"].values())
    assert all(v is not None for v in doc["gauges"].values())


def test_plan_smoke(capsys):
    """``repro plan`` prints an EXPLAIN ANALYZE tree plus a hotspot list."""
    rc = cli.main(["plan", "--scale", "tiny", "--seed", "7"])
    out = capsys.readouterr().out
    assert rc == 0
    for marker in ("scan", "group_by", "rows=", "wall=", "sel="):
        assert marker in out, f"{marker!r} missing from explain output"
    assert "operators by wall time:" in out
    assert "rows_out=" in out


def test_sampled_report_records_timeline_and_identical_stdout(capsys):
    from repro.obs import ledger

    rc = cli.main(["report", "--scale", "tiny", "--seed", "7"])
    clean = capsys.readouterr().out
    assert rc == 0
    rc = cli.main(["report", "--scale", "tiny", "--seed", "7",
                   "--sample", "5"])
    sampled = capsys.readouterr().out
    assert rc == 0
    assert sampled == clean  # telemetry never reaches stdout

    unsampled_rec, sampled_rec = ledger.read_records()[-2:]
    assert "timeline" not in unsampled_rec
    assert unsampled_rec["peak_rss_mb"] > 0  # getrusage: recorded always

    timeline = sampled_rec["timeline"]
    assert timeline["schema"] == 1 and timeline["num_samples"] >= 1
    assert sampled_rec["peak_rss_mb"] >= timeline["peak_rss_mb"]
    for sample in timeline["samples"]:
        assert {"t_s", "rss_mb", "cpu_pct", "open_fds", "spill_mb"} <= set(
            sample
        )


def test_trace_json_reports_plan_operator_hotspots(tmp_path, capsys):
    """Every executed plan leaves ``plan.op.*`` spans that ``repro trace
    --json`` ranks into ``top_ops``."""
    from repro import build_study
    from repro.tables import col

    obs.enable(name="unit")
    study = build_study("tiny", seed=7)
    frame = study.enriched.batch_table.lazy().filter(
        col("num_instances") > 0
    )
    frame.collect()
    path = obs.write_trace_json(obs.finish(), tmp_path / "t.json")

    rc = cli.main(["trace", str(path), "--json", "--top", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out)
    ops = doc["top_ops"]
    assert 1 <= len(ops) <= 2
    assert all(not entry["op"].startswith("plan.op.") for entry in ops)
    assert {"scan", "filter"} >= {entry["op"] for entry in ops}
    walls = [entry["wall_s"] for entry in ops]
    assert walls == sorted(walls, reverse=True)


def test_trace_command_rejects_missing_and_garbage(tmp_path, capsys):
    rc = cli.main(["trace", str(tmp_path / "missing.json")])
    captured = capsys.readouterr()
    assert rc == 2
    assert "cannot read trace" in captured.err

    garbage = tmp_path / "garbage.json"
    garbage.write_text('{"nope": true}')
    rc = cli.main(["trace", str(garbage)])
    captured = capsys.readouterr()
    assert rc == 2
    assert "cannot read trace" in captured.err
