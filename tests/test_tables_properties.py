"""Property-based tests for the table engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tables import Table, group_by, read_csv, write_csv
from repro.tables.column import as_column, factorize

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)

int_columns = st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=40)
float_columns = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    min_size=1,
    max_size=40,
)
# Letters only: CSV type inference deliberately reads numeric-looking
# strings back as numbers, so digit strings cannot round-trip as str.
str_columns = st.lists(
    st.text(alphabet="abcxyz ,", max_size=12), min_size=1, max_size=40
)


@given(int_columns, float_columns, str_columns)
@settings(max_examples=60, deadline=None)
def test_csv_round_trip_preserves_table(ints, floats, strs):
    n = min(len(ints), len(floats), len(strs))
    t = Table({"i": ints[:n], "f": floats[:n], "s": strs[:n]})
    import tempfile, os

    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "t.csv")
        write_csv(t, path)
        back = read_csv(path)
    assert back.num_rows == t.num_rows
    assert np.array_equal(back["i"], t["i"])
    assert np.allclose(back["f"], t["f"])
    # Strings: empty strings read back as missing (CSV cannot distinguish
    # "" from absent) — None in a str column, NaN if the whole column was
    # empty.  All other values survive exactly.
    for a, b in zip(t["s"], back["s"]):
        missing = b is None or (isinstance(b, float) and np.isnan(b))
        assert (a == b) or (a == "" and missing)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_groupby_counts_partition_rows(keys):
    t = Table({"k": keys, "v": list(range(len(keys)))})
    g = group_by(t, "k").agg({"n": ("v", "count")})
    assert int(g["n"].sum()) == len(keys)
    # Every key appears exactly once in the output.
    assert len(set(g["k"])) == g.num_rows == len(set(keys))


@given(st.lists(st.integers(0, 8), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_groupby_sum_matches_python(keys):
    values = np.arange(len(keys), dtype=np.float64)
    t = Table({"k": keys, "v": values})
    g = group_by(t, "k").agg({"s": ("v", "sum")})
    expected = {}
    for k, v in zip(keys, values):
        expected[k] = expected.get(k, 0.0) + v
    for row in g.to_rows():
        assert row["s"] == expected[row["k"]]


@given(st.lists(st.text(alphabet="abc", max_size=3), min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_factorize_reconstructs(values):
    array = as_column(values)
    codes, uniques = factorize(array)
    rebuilt = uniques[codes]
    assert all(a == b for a, b in zip(rebuilt, array))
    assert len(set(codes.tolist())) == len(uniques)


@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=80),
    st.integers(0, 3),
)
@settings(max_examples=60, deadline=None)
def test_sort_then_filter_consistency(values, pivot_idx):
    t = Table({"v": values})
    pivot = values[pivot_idx % len(values)]
    sorted_t = t.sort_by("v")
    assert list(sorted_t["v"]) == sorted(values)
    filtered = t.filter(t["v"] > pivot)
    assert all(v > pivot for v in filtered["v"])
    assert filtered.num_rows == sum(1 for v in values if v > pivot)
