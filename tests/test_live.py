"""Tests for :mod:`repro.obs.live` and :mod:`repro.obs.promexport`.

The live telemetry service has three load-bearing guarantees, each pinned
here: (1) ``/metrics`` is valid Prometheus text exposition rendered from a
consistent registry snapshot, (2) the ``/events`` SSE stream carries
schema-v1 events from every hook (spans, sampler ticks, parallel chunks,
shard progress, ledger appends) over a real socket, and (3) nothing the
server does — concurrent clients, injected ``serve.request:fail`` faults,
slow subscribers — can disturb the build it observes or change a byte of
CLI stdout (the ``--live`` identity test).
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import faults, obs
from repro.obs import live, promexport
from repro.parallel import map_chunks


@pytest.fixture(autouse=True)
def _clean_slate():
    """Tracing off, faults clear, and no lingering server after each test."""
    yield
    obs.finish()
    faults.configure(None)
    server = live.active_server()
    if server is not None:
        server.stop()


@pytest.fixture
def server():
    srv = live.TelemetryServer(port=0).start()
    yield srv
    srv.stop()


def _get(url: str, timeout: float = 5.0):
    """GET returning ``(status, headers, body-text)`` without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read().decode()


def _double(x):
    return x * 2


# --------------------------------------------------------------------- #
# Prometheus exposition
# --------------------------------------------------------------------- #


class TestPromExport:
    def test_prom_name_sanitization(self):
        assert promexport.prom_name("cache.hit") == "repro_cache_hit"
        assert promexport.prom_name("serve.request_failed") == (
            "repro_serve_request_failed"
        )
        assert promexport.prom_name("0weird-name!") == "repro__0weird_name_"

    def test_golden_exposition(self):
        registry = obs.MetricsRegistry()
        registry.counter("demo.hits").inc(3)
        registry.gauge("demo.workers").set(4)
        hist = registry.histogram("demo.seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = promexport.render_prometheus(registry.snapshot())
        assert text == (
            "# TYPE repro_demo_hits_total counter\n"
            "repro_demo_hits_total 3\n"
            "# TYPE repro_demo_workers gauge\n"
            "repro_demo_workers 4\n"
            "# TYPE repro_demo_seconds histogram\n"
            'repro_demo_seconds_bucket{le="0.1"} 1\n'
            'repro_demo_seconds_bucket{le="1"} 2\n'
            'repro_demo_seconds_bucket{le="+Inf"} 3\n'
            "repro_demo_seconds_sum 5.55\n"
            "repro_demo_seconds_count 3\n"
        )

    def test_unset_gauges_are_omitted(self):
        registry = obs.MetricsRegistry()
        registry.gauge("demo.never_set")
        registry.counter("demo.count").inc()
        text = promexport.render_prometheus(registry.snapshot())
        assert "never_set" not in text
        assert "repro_demo_count_total 1" in text

    def test_global_registry_exposition_parses(self):
        obs.counter("live_test.parse_check").inc(2)
        text = promexport.render_prometheus()
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9.+eE_inf-]+$'
        )
        for line in text.strip().splitlines():
            assert line.startswith("# TYPE ") or sample.match(line), line
        assert "repro_live_test_parse_check_total 2" in text

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        obs.REGISTRY.histogram("live_test.cumulative", (0.5, 2.0)).observe(1.0)
        text = promexport.render_prometheus()
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'repro_live_test_cumulative_bucket\{le="[^"]+"\} (\d+)', text
            )
        ]
        assert counts == sorted(counts)
        count = int(
            re.search(r"repro_live_test_cumulative_count (\d+)", text).group(1)
        )
        assert counts[-1] == count


# --------------------------------------------------------------------- #
# Event bus
# --------------------------------------------------------------------- #


class TestEventBus:
    def test_envelope_and_sequencing(self):
        bus = live.EventBus()
        sub = bus.subscribe()
        bus.publish("demo.kind", shard=3)
        bus.publish("demo.kind", shard=4)
        first = sub.get(timeout=1.0)
        second = sub.get(timeout=1.0)
        assert first["schema"] == live.EVENT_SCHEMA_VERSION
        assert first["kind"] == "demo.kind"
        assert first["shard"] == 3
        assert second["seq"] == first["seq"] + 1
        assert first["ts"] > 0
        sub.close()

    def test_publish_without_subscribers_is_noop(self):
        bus = live.EventBus()
        bus.publish("demo.kind")
        assert bus.seq == 0

    def test_slow_subscriber_drops_instead_of_blocking(self):
        bus = live.EventBus()
        sub = bus.subscribe(maxsize=2)
        dropped = obs.counter("serve.events_dropped")
        before = dropped.value
        for _ in range(5):
            bus.publish("demo.kind")
        assert dropped.value == before + 3
        assert sub.get(timeout=0.1)["seq"] == 1
        sub.close()

    def test_forked_child_publish_is_noop(self):
        bus = live.EventBus()
        sub = bus.subscribe()
        bus._pid += 1  # simulate "this is not the creating process"
        bus.publish("demo.kind")
        assert sub.get(timeout=0.05) is None
        sub.close()

    def test_unsubscribe_stops_delivery(self):
        bus = live.EventBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("demo.kind")
        assert sub.get(timeout=0.05) is None


# --------------------------------------------------------------------- #
# HTTP endpoints
# --------------------------------------------------------------------- #


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = _get(f"{server.url}/healthz")
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0

    def test_metrics_content_type_and_content(self, server):
        obs.counter("live_test.endpoint_check").inc()
        status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == promexport.PROM_CONTENT_TYPE
        assert "repro_live_test_endpoint_check_total 1" in body
        # The server's own traffic is metered too.
        assert "repro_serve_requests_total" in body

    def test_metrics_reflects_worker_deltas(self, server):
        """Pool-worker counter increments fold into the parent registry and
        surface on the next scrape (the 'merged across pool workers' leg)."""
        pool_maps = obs.counter("parallel.pool_maps")
        before = pool_maps.value
        result = map_chunks(_double, list(range(64)), workers=2, chunk_size=8)
        assert result == [x * 2 for x in range(64)]
        if pool_maps.value == before:
            pytest.skip("process pool unavailable; no worker deltas to check")
        _, _, body = _get(f"{server.url}/metrics")
        chunk_count = int(
            re.search(r"repro_parallel_chunk_seconds_count (\d+)", body).group(1)
        )
        assert chunk_count >= 8  # worker-side observations, post-fold

    def test_runs_endpoints(self, server, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.ledger.LEDGER_DIR_ENV, str(tmp_path))
        record = obs.ledger.build_record(
            kind="study", command="report", config={"scale": "tiny", "seed": 7}
        )
        assert obs.ledger.append_record(record) is not None
        status, _, body = _get(f"{server.url}/runs")
        assert status == 200
        summaries = json.loads(body)
        assert summaries[-1]["run_id"] == record["run_id"]
        assert summaries[-1]["command"] == "report"
        status, _, body = _get(f"{server.url}/runs/{record['run_id']}")
        assert status == 200
        assert json.loads(body)["run_id"] == record["run_id"]
        status, _, _ = _get(f"{server.url}/runs/nope-no-such-run")
        assert status == 404

    def test_unknown_path_404s(self, server):
        status, _, body = _get(f"{server.url}/nope")
        assert status == 404
        assert "no route" in body

    def test_dashboard_served_live(self, server):
        status, headers, body = _get(f"{server.url}/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert "EventSource('/events')" in body
        assert "fetch('/metrics')" in body

    def test_static_dashboard_has_no_live_panel(self):
        from repro.obs import dashboard

        html = dashboard.render_dashboard([])
        assert "EventSource" not in html

    def test_concurrent_clients_smoke(self, server):
        """>= 8 parallel clients hammering /metrics and /healthz all get 200s."""
        statuses: list[int] = []
        lock = threading.Lock()

        def client(path: str) -> None:
            for _ in range(5):
                status, _, _ = _get(f"{server.url}{path}")
                with lock:
                    statuses.append(status)

        threads = [
            threading.Thread(
                target=client, args=("/metrics" if i % 2 else "/healthz",)
            )
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(statuses) == 40
        assert set(statuses) == {200}


# --------------------------------------------------------------------- #
# SSE over a real socket
# --------------------------------------------------------------------- #


def _sse_frames(raw: str) -> list[dict]:
    """Parse ``data:`` payloads out of a raw SSE byte stream."""
    return [
        json.loads(line[len("data: "):])
        for line in raw.splitlines()
        if line.startswith("data: ")
    ]


class TestSSE:
    def test_stream_over_raw_socket(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        try:
            sock.sendall(
                b"GET /events?limit=2&heartbeat=0.2 HTTP/1.1\r\n"
                b"Host: localhost\r\nAccept: text/event-stream\r\n\r\n"
            )
            # Wait for the subscription before publishing, else the events
            # race the handler's subscribe.
            deadline = time.monotonic() + 5.0
            while live.BUS.subscribers == 0:
                assert time.monotonic() < deadline, "SSE client never subscribed"
                time.sleep(0.01)
            live.publish("demo.alpha", shard=1)
            live.publish("demo.beta", shard=2)
            raw = b""
            while b"demo.beta" not in raw:
                chunk = sock.recv(65536)
                assert chunk, f"stream closed early: {raw!r}"
                raw += chunk
        finally:
            sock.close()
        text = raw.decode()
        assert "HTTP/1.0 200" in text or "HTTP/1.1 200" in text
        assert "Content-Type: text/event-stream" in text
        frames = _sse_frames(text)
        hello, first, second = frames[0], frames[1], frames[2]
        assert hello["schema"] == live.EVENT_SCHEMA_VERSION
        assert first["kind"] == "demo.alpha" and first["shard"] == 1
        assert second["kind"] == "demo.beta"
        assert second["seq"] == first["seq"] + 1
        assert f"id: {first['seq']}" in text
        assert "event: demo.alpha" in text

    def test_keepalive_comments_flow_when_idle(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        try:
            sock.sendall(
                b"GET /events?limit=1&heartbeat=0.05 HTTP/1.1\r\n"
                b"Host: localhost\r\n\r\n"
            )
            raw = b""
            while b": keepalive" not in raw:
                chunk = sock.recv(65536)
                assert chunk, f"stream closed before any keepalive: {raw!r}"
                raw += chunk
            live.publish("demo.wake")
            while b"demo.wake" not in raw:
                chunk = sock.recv(65536)
                assert chunk, f"stream closed before the event: {raw!r}"
                raw += chunk
        finally:
            sock.close()

    def test_disconnecting_client_unsubscribes(self, server):
        before = live.BUS.subscribers
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        sock.sendall(
            b"GET /events?heartbeat=0.05 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        deadline = time.monotonic() + 5.0
        while live.BUS.subscribers <= before:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        sock.close()
        deadline = time.monotonic() + 5.0
        while live.BUS.subscribers > before:
            assert time.monotonic() < deadline, "subscriber never cleaned up"
            time.sleep(0.02)


# --------------------------------------------------------------------- #
# Event hooks
# --------------------------------------------------------------------- #


class TestHooks:
    def test_span_events_published_while_serving(self, server):
        obs.enable(name="live-test")
        sub = live.BUS.subscribe()
        with obs.span("demo.phase", scale="tiny"):
            pass
        obs.finish()
        kinds = []
        while (event := sub.get(timeout=0.2)) is not None:
            kinds.append((event["kind"], event.get("name")))
        sub.close()
        assert ("span.open", "demo.phase") in kinds
        closed = [
            e for e in kinds if e == ("span.close", "demo.phase")
        ]
        assert closed

    def test_span_close_carries_timing_and_attrs(self, server):
        obs.enable(name="live-test")
        sub = live.BUS.subscribe()
        with obs.span("demo.timed", label=object()):
            time.sleep(0.01)
        obs.finish()
        closes = []
        while (event := sub.get(timeout=0.2)) is not None:
            if event["kind"] == "span.close":
                closes.append(event)
        sub.close()
        assert closes[0]["wall_s"] >= 0.01
        # Non-JSON attr values are stringified, never a serialization error.
        assert isinstance(closes[0]["attrs"]["label"], str)

    def test_no_span_events_without_server(self):
        assert live.active_server() is None
        obs.enable(name="live-test")
        sub = live.BUS.subscribe()
        with obs.span("demo.unobserved"):
            pass
        obs.finish()
        events = []
        while (event := sub.get(timeout=0.05)) is not None:
            events.append(event)
        sub.close()
        assert not any(e["kind"].startswith("span.") for e in events)

    def test_sampler_tick_events(self, server):
        from repro.obs.sampler import ResourceSampler

        clock = iter(float(i) for i in range(10))
        sampler = ResourceSampler(
            interval_ms=50,
            clock=lambda: next(clock),
            reader=lambda: (100.0, 1.0, 4, 0.0),
        )
        sub = live.BUS.subscribe()
        sampler.sample_once()
        event = sub.get(timeout=1.0)
        sub.close()
        assert event["kind"] == "sampler.tick"
        assert event["rss_mb"] == 100.0
        assert "t_s" in event

    def test_ledger_append_publishes_run_recorded(
        self, server, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(obs.ledger.LEDGER_DIR_ENV, str(tmp_path))
        sub = live.BUS.subscribe()
        record = obs.ledger.build_record(
            kind="study", command="report", config={}
        )
        obs.ledger.append_record(record)
        event = sub.get(timeout=1.0)
        sub.close()
        assert event["kind"] == "run.recorded"
        assert event["run_id"] == record["run_id"]
        assert event["run_kind"] == "study"

    def test_parallel_chunk_events(self, server):
        pool_maps = obs.counter("parallel.pool_maps")
        before = pool_maps.value
        sub = live.BUS.subscribe()
        map_chunks(_double, list(range(64)), workers=2, chunk_size=8)
        pooled = pool_maps.value > before
        events = []
        while (event := sub.get(timeout=0.2)) is not None:
            events.append(event)
        sub.close()
        if not pooled:
            pytest.skip("process pool unavailable; no chunk events expected")
        kinds = {e["kind"] for e in events}
        assert {"chunk.dispatch", "chunk.complete", "chunk.folded"} <= kinds
        dispatches = [e for e in events if e["kind"] == "chunk.dispatch"]
        assert {d["index"] for d in dispatches} == set(range(8))
        assert all(d["total"] == 8 for d in dispatches)
        # Chunks beyond the initial window are dispatched as steals.
        folded = [e for e in events if e["kind"] == "chunk.folded"]
        assert len(folded) == 8
        assert all(f["pid"] for f in folded)

    def test_shard_progress_events(self, server, monkeypatch):
        from repro.shard.build import build_released_enriched
        from repro.simulator.config import SimulationConfig

        # Force the serial path so shard.progress events fire in-process.
        monkeypatch.setenv("REPRO_WORKERS", "1")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        sub = live.BUS.subscribe()
        config = SimulationConfig.preset("tiny", seed=13)
        build_released_enriched(config, 2, spill=False)
        events = []
        while (event := sub.get(timeout=0.2)) is not None:
            events.append(event)
        sub.close()
        progress = [e for e in events if e["kind"] == "shard.progress"]
        assert [(e["shard"], e["status"]) for e in progress] == [
            (0, "built"), (1, "built"),
        ]
        results = [e for e in events if e["kind"] == "shard.result"]
        assert [(e["shard"], e["total"]) for e in results] == [(0, 2), (1, 2)]


# --------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------- #


class TestServeFaults:
    def test_injected_fault_500s_and_counts(self, server):
        failed = obs.counter("serve.request_failed")
        before = failed.value
        faults.configure("serve.request:fail@1")
        status, _, body = _get(f"{server.url}/metrics")
        assert status == 500
        assert "InjectedFault" in body
        assert failed.value == before + 1
        # The fault fired exactly once: the server survives and the next
        # request succeeds.
        status, _, _ = _get(f"{server.url}/metrics")
        assert status == 200
        status, _, _ = _get(f"{server.url}/healthz")
        assert status == 200

    def test_every_request_faulted_still_never_kills_server(self, server):
        faults.configure("serve.request:fail")
        for _ in range(3):
            status, _, _ = _get(f"{server.url}/healthz")
            assert status == 500
        faults.configure(None)
        status, _, _ = _get(f"{server.url}/healthz")
        assert status == 200

    def test_faulted_requests_do_not_disturb_the_observed_build(self, server):
        from repro import build_study

        faults.configure("serve.request:fail")
        status, _, _ = _get(f"{server.url}/metrics")
        assert status == 500
        study = build_study("tiny", seed=7)
        assert study.released.instances.num_rows > 0
        faults.configure(None)
        status, _, _ = _get(f"{server.url}/healthz")
        assert status == 200


# --------------------------------------------------------------------- #
# Server lifecycle + CLI
# --------------------------------------------------------------------- #


class TestLifecycleAndCLI:
    def test_ephemeral_port_and_active_server(self):
        server = live.serve_background()
        assert server.port > 0
        assert live.active_server() is server
        assert server.running
        server.stop()
        assert live.active_server() is None
        assert not server.running

    def test_stop_is_idempotent(self):
        server = live.serve_background()
        server.stop()
        server.stop()

    def test_serve_command_smoke(self, capsys):
        from repro import cli

        rc = cli.main(["serve", "--port", "0", "--duration", "0.1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving live telemetry on http://127.0.0.1:" in out
        assert "/metrics" in out
        assert live.active_server() is None

    def test_live_flag_keeps_stdout_byte_identical(self, capsys):
        """A --live run's stdout matches an unserved run's exactly, while a
        client polls /metrics and streams /events mid-build."""
        from repro import cli

        rc = cli.main(["report", "--scale", "tiny", "--seed", "7"])
        clean = capsys.readouterr().out
        assert rc == 0

        polled: list = []

        def poll() -> None:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                server = live.active_server()
                if server is not None:
                    try:
                        polled.append(_get(f"{server.url}/metrics")[0])
                        polled.append(
                            _get(
                                f"{server.url}/events?limit=1&heartbeat=0.1",
                                timeout=10,
                            )[0]
                        )
                    except Exception as exc:  # pragma: no cover - diagnostics
                        polled.append(repr(exc))
                    return
                time.sleep(0.005)

        poller = threading.Thread(target=poll)
        poller.start()
        rc = cli.main(["report", "--scale", "tiny", "--seed", "7", "--live", "0"])
        poller.join()
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out == clean  # byte-identical stdout
        assert "live telemetry on http://127.0.0.1:" in captured.err
        assert polled == [200, 200]
        assert live.active_server() is None
