"""Tests for the ASCII reporting helpers."""

import math

import numpy as np
import pytest

from repro.reporting import (
    format_count,
    format_seconds,
    render_bar_chart,
    render_comparison_rows,
    render_series,
    render_table,
)


class TestFormatters:
    @pytest.mark.parametrize("value,expected", [
        (0, "0"),
        (999, "999"),
        (1_000, "1.0k"),
        (45_300, "45.3k"),
        (1_234_567, "1.2M"),
        (2.5, "2.50"),
    ])
    def test_format_count(self, value, expected):
        assert format_count(value) == expected

    def test_format_count_nan(self):
        assert format_count(float("nan")) == "nan"

    @pytest.mark.parametrize("value,expected", [
        (45, "45s"),
        (300, "5.0min"),
        (7200, "2.0h"),
        (3 * 86400, "3.0d"),
    ])
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    def test_format_seconds_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(empty)"

    def test_columns_aligned(self):
        text = render_table(
            [{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(l) for l in lines if l)) <= 2

    def test_explicit_column_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_nan_cell(self):
        assert "nan" in render_table([{"x": float("nan")}])

    def test_missing_key_blank(self):
        text = render_table([{"a": 1}], columns=["a", "ghost"])
        assert "ghost" in text


class TestRenderBarChart:
    def test_empty(self):
        assert render_bar_chart({}) == "(empty)"

    def test_sorted_by_value(self):
        text = render_bar_chart({"low": 1.0, "high": 10.0})
        lines = text.splitlines()
        assert lines[0].startswith("high")

    def test_unsorted_keeps_order(self):
        text = render_bar_chart({"z": 1.0, "a": 10.0}, sort=False)
        assert text.splitlines()[0].startswith("z")

    def test_zero_values(self):
        text = render_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text and "b" in text

    def test_peak_gets_longest_bar(self):
        text = render_bar_chart({"big": 100.0, "small": 1.0})
        lines = {l.split("|")[0].strip(): l.count("#") for l in text.splitlines()}
        assert lines["big"] > lines["small"]


class TestRenderSeries:
    def test_empty(self):
        assert render_series(np.array([])) == "(empty series)"

    def test_title_and_peak(self):
        text = render_series(np.array([1.0, 5.0, 2.0]), title="demo")
        assert text.startswith("demo (peak 5")

    def test_dimensions(self):
        text = render_series(np.arange(200.0), width=50, height=6)
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(l) <= 50 for l in lines)

    def test_nan_treated_as_zero(self):
        text = render_series(np.array([float("nan"), 1.0]))
        assert "#" in text

    def test_all_zero(self):
        text = render_series(np.zeros(10))
        assert "#" not in text


class TestRenderComparisonRows:
    def test_renders_medians_and_p(self):
        rows = [
            {
                "feature": "num_words",
                "split": "num_words <= 466 vs > 466",
                "count_low": 10,
                "count_high": 11,
                "median_low": 0.147,
                "median_high": 0.108,
                "p_value": 0.0001,
            }
        ]
        text = render_comparison_rows(rows)
        assert "num_words" in text
        assert "0.0001" in text or "1e-04" in text
