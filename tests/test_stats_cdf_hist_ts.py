"""Unit + property tests for CDFs, histograms, and calendar bucketing."""

import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    EmpiricalCDF,
    cdf_dominates,
    bucket_by_day,
    bucket_by_week,
    cumulative_series,
    day_of_week,
    linear_histogram,
    log_histogram,
    week_index,
)
from repro.stats.timeseries import (
    DAY_SECONDS,
    EPOCH_DATE,
    WEEK_SECONDS,
    date_to_timestamp,
    day_of_week_totals,
    week_start_date,
)


class TestEmpiricalCDF:
    def test_evaluate_known_points(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_quantile_median(self):
        cdf = EmpiricalCDF.from_sample([5.0, 1.0, 3.0])
        assert cdf.median() == 3.0

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_sample([])

    def test_nan_dropped(self):
        cdf = EmpiricalCDF.from_sample([1.0, float("nan"), 2.0])
        assert cdf.sample_size == 2

    def test_series_shape(self):
        cdf = EmpiricalCDF.from_sample(np.arange(10.0))
        xs, ys = cdf.series(50)
        assert len(xs) == len(ys) == 50

    def test_dominance(self):
        better = EmpiricalCDF.from_sample(np.arange(0.0, 1.0, 0.01))
        worse = EmpiricalCDF.from_sample(np.arange(0.5, 1.5, 0.01))
        assert cdf_dominates(better, worse)
        assert not cdf_dominates(worse, better)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_monotone_nondecreasing(self, sample):
        cdf = EmpiricalCDF.from_sample(sample)
        xs = np.linspace(min(sample) - 1, max(sample) + 1, 64)
        ys = cdf.evaluate(xs)
        assert np.all(np.diff(ys) >= -1e-12)
        assert ys[-1] == pytest.approx(1.0)


class TestHistograms:
    def test_linear_counts_sum(self):
        h = linear_histogram(np.arange(100.0), bins=10)
        assert h.total == 100
        assert h.num_bins == 10

    def test_linear_empty_rejected(self):
        with pytest.raises(ValueError):
            linear_histogram([])

    def test_linear_constant_data(self):
        h = linear_histogram([2.0, 2.0, 2.0], bins=4)
        assert h.total == 3

    def test_fractions(self):
        h = linear_histogram([1.0, 2.0, 3.0, 4.0], bins=2)
        assert h.fractions().sum() == pytest.approx(1.0)

    def test_log_bins_powers_of_ten(self):
        h = log_histogram([1, 10, 100, 1000])
        assert h.total == 4
        # Edge sequence is 1, 10, 100, ...
        assert h.edges[0] == 1.0
        assert h.edges[1] == pytest.approx(10.0)

    def test_log_negative_rejected(self):
        with pytest.raises(ValueError):
            log_histogram([-1.0, 2.0])

    def test_log_values_below_one_clipped(self):
        h = log_histogram([0.1, 0.5, 2.0])
        assert h.total == 3

    def test_as_pairs_length(self):
        h = linear_histogram(np.arange(10.0), bins=5)
        assert len(h.as_pairs()) == 5

    def test_edge_count_mismatch_rejected(self):
        from repro.stats.histogram import Histogram

        with pytest.raises(ValueError):
            Histogram(edges=np.array([0.0, 1.0]), counts=np.array([1, 2]))


class TestCalendar:
    def test_epoch_is_monday(self):
        assert EPOCH_DATE.weekday() == 0

    def test_week_index(self):
        assert week_index([0, WEEK_SECONDS - 1, WEEK_SECONDS])[0] == 0
        assert list(week_index([0, WEEK_SECONDS - 1, WEEK_SECONDS])) == [0, 0, 1]

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            week_index([-1])

    def test_day_of_week_monday(self):
        assert day_of_week([0])[0] == 0
        assert day_of_week([5 * DAY_SECONDS])[0] == 5

    def test_week_start_date_round_trip(self):
        date = week_start_date(131)
        assert date == datetime.date(2015, 1, 5)
        assert date_to_timestamp(date) == 131 * WEEK_SECONDS

    def test_date_before_epoch_rejected(self):
        with pytest.raises(ValueError):
            date_to_timestamp(datetime.date(2010, 1, 1))

    def test_bucket_by_week_counts(self):
        t = [0, 1, WEEK_SECONDS, WEEK_SECONDS + 5, 3 * WEEK_SECONDS]
        counts = bucket_by_week(t)
        assert list(counts) == [2, 2, 0, 1]

    def test_bucket_by_week_weights(self):
        t = [0, 0, WEEK_SECONDS]
        w = [1.5, 2.5, 3.0]
        assert list(bucket_by_week(t, weights=w)) == [4.0, 3.0]

    def test_bucket_by_day(self):
        t = [0, DAY_SECONDS, DAY_SECONDS + 10]
        assert list(bucket_by_day(t)) == [1, 2]

    def test_cumulative_series(self):
        t = [0, WEEK_SECONDS, WEEK_SECONDS]
        assert list(cumulative_series(t)) == [1, 3]

    def test_day_of_week_totals(self):
        t = [0, DAY_SECONDS, 7 * DAY_SECONDS]  # Mon, Tue, Mon
        totals = day_of_week_totals(t)
        assert totals[0] == 2 and totals[1] == 1
