"""Unit tests for repro.stats.descriptive."""

import math

import numpy as np
import pytest

from repro.stats import gini_coefficient, iqr, median, percentile, summarize, top_share


class TestMedianPercentile:
    def test_median_simple(self):
        assert median([1, 2, 3]) == 2.0

    def test_median_ignores_nan(self):
        assert median([1.0, float("nan"), 3.0]) == 2.0

    def test_median_empty_is_nan(self):
        assert math.isnan(median([]))

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_iqr(self):
        data = np.arange(1, 101)
        assert iqr(data) == pytest.approx(
            np.percentile(data, 75) - np.percentile(data, 25)
        )


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_approaches_one(self):
        g = gini_coefficient([0] * 999 + [1000])
        assert g > 0.99

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])

    def test_known_value(self):
        # For [1, 3]: G = (2 + 1 - 2*(1+4)/4)/2 = 0.25
        assert gini_coefficient([1, 3]) == pytest.approx(0.25)


class TestTopShare:
    def test_uniform(self):
        assert top_share(np.ones(100), 0.10) == pytest.approx(0.10)

    def test_concentrated(self):
        data = np.zeros(100)
        data[0] = 100.0
        assert top_share(data, 0.10) == 1.0

    def test_paper_style_check(self):
        # A Zipfian workload should concentrate heavily in the top decile.
        tasks = 1.0 / np.arange(1, 1001) ** 1.2
        assert top_share(tasks, 0.10) > 0.5

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            top_share([1, 2], 0.0)

    def test_zero_total(self):
        assert top_share([0, 0], 0.5) == 0.0


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == 2.5

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "p25", "median", "p75", "max"}
