"""Scheduler behavior: as-completed dispatch, deadlines from dispatch,
work stealing under deterministic skew, and overlapped spill writes.

The deadline test is the bugfix pin: the pre-dispatcher executor awaited
chunk results in submission order (``res.get(timeout)``), so a hung chunk
behind slow earlier chunks got up to ``timeout x position`` of wall time
before :class:`~repro.parallel.PoolTimeoutError` fired.  The as-completed
dispatcher measures every deadline from the chunk's *dispatch*, so the
same scenario must fail within about one timeout — the elapsed-time
assertion here fails under the old semantics.

Scheduling must never change bytes: the skew and fault scenarios are all
closed against the monolithic study with the byte-level comparators from
``test_shard_equivalence``.
"""

from __future__ import annotations

import time

import pytest

from repro import build_study, faults, obs, parallel
from repro.parallel import PoolTimeoutError, map_chunks
from repro.shard import build_released_enriched, build_shard_partial, load_partial
from repro.shard.store import SpillWriter
from repro.simulator.config import SimulationConfig
from tests.test_shard_equivalence import assert_studies_byte_identical


def _sleep_return(seconds):
    time.sleep(seconds)
    return seconds


def _sleep_group(group):
    return [_sleep_return(seconds) for seconds in group]


@pytest.fixture(autouse=True)
def _clean_state(tmp_path, monkeypatch):
    """Cold per-test spill store; no fault or warn-once leakage."""
    from repro import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    parallel.reset_warnings()
    faults.configure(None)
    yield
    faults.configure(None)
    parallel.reset_warnings()


# --------------------------------------------------------------------- #
# Per-chunk deadlines measured from dispatch (the timeout bugfix)
# --------------------------------------------------------------------- #


class TestDeadlineFromDispatch:
    def test_hung_chunk_behind_slow_chunk_fails_within_one_timeout(self):
        # Two workers, chunk_size=1 over [0.01, 0.9, 0.0, 0.0].  Fault
        # arrival counters are per-process and fork-copied, so @2 hangs
        # whichever chunk a worker takes *second*: the fast worker finishes
        # its 0.01s chunk, steals chunk 2 at ~t=0.01, and hangs.  Deadline
        # from dispatch: PoolTimeoutError at ~1.01s.  The old
        # submission-order semantics waited out the 0.9s chunk first and
        # only started chunk 2's clock then (~1.9s) — the elapsed bound
        # fails on that behavior.
        faults.configure("pool.chunk:hang@2")
        timeouts = obs.counter("parallel.timeout")
        dropped = obs.counter("parallel.chunks_dropped")
        t0, d0 = timeouts.value, dropped.value
        start = time.monotonic()
        with pytest.raises(PoolTimeoutError, match="of dispatch"):
            parallel._pool_map(
                _sleep_return, [0.01, 0.9, 0.0, 0.0], 2, 1, 1.0
            )
        elapsed = time.monotonic() - start
        assert elapsed < 1.5, (
            f"timeout fired after {elapsed:.2f}s — submission-order "
            f"semantics, not deadline-from-dispatch"
        )
        assert timeouts.value == t0 + 1
        # Both non-hung chunks had completed (and shipped telemetry) when
        # the pool result was abandoned; the drop is counted, not silent.
        assert dropped.value == d0 + 2

    def test_map_chunks_still_degrades_to_serial_on_timeout(self):
        faults.configure("pool.chunk:hang@2")
        items = [0.01, 0.2, 0.0, 0.0]
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(
                _sleep_return, items,
                workers=2, chunk_size=1, timeout=0.5, min_items=2,
            )
        assert result == items

    def test_chunks_dropped_counted_on_worker_crash(self):
        # Each worker's first chunk is fault-arrival 1, so @2 can only
        # crash a chunk after that worker completed one — at least one
        # completed chunk's telemetry is dropped, and the serial fallback
        # still produces the full result.
        faults.configure("pool.chunk:fail@2")
        dropped = obs.counter("parallel.chunks_dropped")
        d0 = dropped.value
        items = [0.05, 0.05, 0.0, 0.0]
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = map_chunks(
                _sleep_return, items, workers=2, chunk_size=1, min_items=2
            )
        assert result == items
        assert d0 + 1 <= dropped.value <= d0 + 3


# --------------------------------------------------------------------- #
# As-completed dispatch and the steal counter
# --------------------------------------------------------------------- #


class TestStealAccounting:
    def test_steals_beyond_window_with_timeout(self):
        # With a timeout the in-flight window equals the worker count (2),
        # so 6 of the 8 chunks are dispatched on completion — stolen by
        # whichever worker freed first.
        steals = obs.counter("parallel.steals")
        s0 = steals.value
        out = map_chunks(
            _sleep_return, [0.0] * 8,
            workers=2, chunk_size=1, timeout=30.0, min_items=2,
        )
        assert out == [0.0] * 8
        assert steals.value == s0 + 6

    def test_window_doubles_without_timeout(self):
        steals = obs.counter("parallel.steals")
        s0 = steals.value
        out = map_chunks(
            _sleep_return, [0.0] * 8, workers=2, chunk_size=1, min_items=2
        )
        assert out == [0.0] * 8
        assert steals.value == s0 + 4  # window 2n = 4 filled up front

    def test_results_in_input_order_under_any_schedule(self):
        # The straggler-first input guarantees out-of-order completion;
        # results must still come back in input order.
        items = [0.15] + [0.0] * 11
        out = map_chunks(
            _sleep_return, items, workers=2, chunk_size=1, min_items=2
        )
        assert out == items


# --------------------------------------------------------------------- #
# Work stealing under deterministic skew
# --------------------------------------------------------------------- #


class TestWorkStealingUnderSkew:
    #: One straggler carrying 8x the mean work plus 7 unit shards.  Sleep
    #: units so the comparison measures scheduling, not CPU throughput.
    UNIT = 0.02
    SIZES = (8,) + (1,) * 7

    def test_dynamic_schedule_beats_static_placement(self):
        items = [s * self.UNIT for s in self.SIZES]
        start = time.monotonic()
        dynamic_out = map_chunks(
            _sleep_return, items, workers=2, chunk_size=1, min_items=2
        )
        dynamic = time.monotonic() - start
        assert dynamic_out == items

        # Static placement: shard i pinned to worker i % 2 up front (the
        # batch_id % K discipline), one chunk per worker.
        groups = [tuple(items[w::2]) for w in range(2)]
        start = time.monotonic()
        static_out = map_chunks(
            _sleep_group, groups, workers=2, chunk_size=1, min_items=2
        )
        static = time.monotonic() - start
        assert sorted(s for g in static_out for s in g) == sorted(items)

        # Ideal walls: dynamic max(8, 7) = 8 units, static 8+3 = 11 units.
        # 1.15x leaves room for pool-spawn overhead on both sides.
        assert static > dynamic * 1.15, (
            f"work stealing ({dynamic:.3f}s) not faster than static "
            f"placement ({static:.3f}s)"
        )

    def test_skewed_shard_build_byte_identical(self):
        # A deterministic straggler shard (shard.build:sleep@1) must change
        # the schedule, never the bytes.
        mono = build_study("tiny", seed=7, cache=False)
        faults.configure("shard.build:sleep@1")
        try:
            skewed = build_study("tiny", seed=7, cache=False, shards=4)
        finally:
            faults.configure(None)
        assert_studies_byte_identical(skewed, mono)

    def test_hang_injected_pooled_build_byte_identical(self, monkeypatch):
        # pool.chunk:hang under REPRO_WORKERS=2 + a short timeout: the
        # dispatcher times the pool out, the build degrades to the serial
        # loop, and the merged study is still byte-identical.
        mono = build_study("tiny", seed=7, cache=False)
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        monkeypatch.setenv(parallel.POOL_TIMEOUT_ENV, "1.0")
        faults.configure("pool.chunk:hang")
        try:
            with pytest.warns(RuntimeWarning, match="process pool unavailable"):
                sharded = build_study("tiny", seed=7, cache=False, shards=3)
        finally:
            faults.configure(None)
        assert_studies_byte_identical(sharded, mono)


# --------------------------------------------------------------------- #
# Double-buffered spill writes
# --------------------------------------------------------------------- #


class TestSpillWriter:
    @pytest.fixture()
    def tiny_config(self):
        return SimulationConfig.preset("tiny", seed=7)

    def test_outcomes_and_store_round_trip(self, tiny_config):
        partials = [
            build_shard_partial(tiny_config, 2, shard) for shard in range(2)
        ]
        overlap = obs.histogram("shard.overlap_seconds")
        c0 = overlap.count
        with SpillWriter(tiny_config) as writer:
            for partial in partials:
                writer.submit(partial)
            outcomes = writer.finish()
        assert set(outcomes) == {0, 1}
        assert overlap.count == c0 + 2
        for shard, (entry, partial) in outcomes.items():
            assert entry is not None and entry.is_dir()
            assert partial is partials[shard]
            assert load_partial(tiny_config, 2, shard) is not None

    def test_failed_spill_hands_partial_back(self, tiny_config):
        partial = build_shard_partial(tiny_config, 2, 0)
        faults.configure("shard.save:fail")
        failed = obs.counter("shard.store_failed")
        f0 = failed.value
        with pytest.warns(RuntimeWarning, match="failed to spill"):
            with SpillWriter(tiny_config) as writer:
                writer.submit(partial)
                outcomes = writer.finish()
        entry, returned = outcomes[0]
        assert entry is None
        assert returned is partial  # the caller keeps the in-memory copy
        assert failed.value == f0 + 1

    def test_escaping_exception_reraises_on_driver_thread(
        self, tiny_config, monkeypatch
    ):
        # A non-OSError escaping store_partial must surface on the driver,
        # exactly where the inline spill would have raised it.
        from repro.shard import store as store_mod

        partial = build_shard_partial(tiny_config, 2, 0)

        def _boom(config, p):
            raise ValueError("spill thread exploded")

        monkeypatch.setattr(store_mod, "store_partial", _boom)
        writer = SpillWriter(tiny_config)
        writer.submit(partial)
        with pytest.raises(ValueError, match="spill thread exploded"):
            writer.finish()

    def test_serial_sharded_build_spills_through_writer(
        self, tiny_config, monkeypatch
    ):
        monkeypatch.delenv(parallel.WORKERS_ENV, raising=False)
        overlap = obs.histogram("shard.overlap_seconds")
        spills = obs.counter("shard.spilled")
        c0, s0 = overlap.count, spills.value
        build_released_enriched(tiny_config, 3, spill=True)
        assert spills.value == s0 + 3
        assert overlap.count == c0 + 3
