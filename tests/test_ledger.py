"""Run ledger and drift detection (:mod:`repro.obs.ledger` / ``.drift``).

Covers the record schema round-trip, the durability rules (best-effort
appends under the ``ledger.append:fail`` fault, corrupt lines skipped with
the ``ledger.corrupt`` counter), the drift thresholds in both directions,
and the ``repro runs`` CLI family driven in-process — including the
acceptance scenario: two clean tiny runs diff with zero fidelity drift,
and a fault-grammar-injected slow phase makes ``repro runs check`` exit
nonzero naming the offending phase.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, faults, obs, parallel
from repro.obs import drift, ledger


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    """Fresh ledger dir + clean fault/trace state around every test."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    faults.configure(None)
    parallel.reset_warnings()
    yield
    faults.configure(None)
    parallel.reset_warnings()
    obs.finish()


def _traced_doc() -> dict:
    """A tiny real trace document: two phases plus a counter."""
    obs.enable(name="unit")
    with obs.span("release"):
        with obs.span("enrichment"):
            pass
    obs.counter("unit.events").inc(3)
    return obs.trace_to_dict(obs.finish())


def _record(
    run_id: str,
    *,
    kind: str = "study",
    command: str = "report",
    scale: str = "tiny",
    seed: int = 7,
    workers: str | None = None,
    faults_spec: str | None = None,
    phases: dict[str, float] | None = None,
    fidelity: dict[str, float] | None = None,
    peak_rss_mb: float | None = None,
    utilization: dict | None = None,
    timeline: dict | None = None,
) -> dict:
    """Synthetic schema-v1 record with the given phase walls / probe devs."""
    extras = {
        key: value
        for key, value in (
            ("peak_rss_mb", peak_rss_mb),
            ("utilization", utilization),
            ("timeline", timeline),
        )
        if value is not None
    }
    return extras | {
        "schema": ledger.LEDGER_SCHEMA_VERSION,
        "run_id": run_id,
        "created_unix": 0.0,
        "kind": kind,
        "command": command,
        "config": {
            "scale": scale, "seed": seed,
            "workers": workers, "faults": faults_spec, "cache": False,
        },
        "total_wall_s": sum((phases or {}).values()),
        "phases": {
            name: {"count": 1, "wall_s": wall, "cpu_s": wall}
            for name, wall in (phases or {}).items()
        },
        "fidelity": {
            probe: {"paper": 1.0, "measured": 1.0 + dev, "deviation": dev}
            for probe, dev in (fidelity or {}).items()
        },
    }


class TestLedgerRoundTrip:
    def test_build_append_read_round_trip(self):
        doc = _traced_doc()
        record = ledger.build_record(
            kind="study", command="report",
            config={"scale": "tiny", "seed": 7},
            trace_doc=doc,
            fidelity={"probe": {"paper": 2.0, "measured": 2.1, "deviation": 0.05}},
            extra={"rc": 0},
        )
        path = ledger.append_record(record)
        assert path == ledger.ledger_path() and path.is_file()

        loaded = ledger.read_records()
        assert len(loaded) == 1
        (back,) = loaded
        assert back["schema"] == ledger.LEDGER_SCHEMA_VERSION
        assert back["run_id"] == record["run_id"]
        assert back["kind"] == "study" and back["command"] == "report"
        assert back["config"]["scale"] == "tiny" and back["rc"] == 0
        assert set(back["phases"]) == {"release", "enrichment"}
        assert back["phases"]["release"]["count"] == 1
        assert back["counters"].get("unit.events") == 3
        assert back["fidelity"]["probe"]["deviation"] == pytest.approx(0.05)
        assert "entries" in back["cache"]

    def test_append_failure_is_best_effort(self):
        """An injected append failure warns, counts, and loses only the
        record — never the run."""
        faults.configure("ledger.append:fail@1")
        failed_before = ledger._APPEND_FAILED.value
        with pytest.warns(RuntimeWarning, match="failed to append"):
            result = ledger.append_record(_record("r1"))
        assert result is None
        assert ledger._APPEND_FAILED.value == failed_before + 1
        assert ledger.read_records() == []

        # The fault fired once; the very next append succeeds.
        assert ledger.append_record(_record("r2")) is not None
        assert [r["run_id"] for r in ledger.read_records()] == ["r2"]

    def test_corrupt_lines_skipped_and_counted(self):
        ledger.append_record(_record("good-1"))
        path = ledger.ledger_path()
        with path.open("a") as handle:
            handle.write("{not json at all\n")                    # corrupt
            truncated = json.dumps(_record("half-written"))
            handle.write(truncated[: len(truncated) // 2] + "\n")  # corrupt
            handle.write(json.dumps(["a", "list"]) + "\n")         # corrupt
            handle.write(json.dumps({"schema": 1}) + "\n")         # no run_id
            future = dict(_record("from-the-future"), schema=999)
            handle.write(json.dumps(future) + "\n")                # other era
        ledger.append_record(_record("good-2"))

        corrupt_before = ledger._CORRUPT.value
        records = ledger.read_records()
        assert [r["run_id"] for r in records] == ["good-1", "good-2"]
        # 4 damaged lines counted; the schema-999 record is skipped silently.
        assert ledger._CORRUPT.value == corrupt_before + 4

    def test_read_missing_file_is_empty(self, tmp_path):
        assert ledger.read_records(tmp_path / "nope.jsonl") == []

    def test_find_record_resolution(self):
        records = [_record("20260101T000000-aaa111"),
                   _record("20260101T000001-bbb222"),
                   _record("20260102T000000-bbb333")]
        assert ledger.find_record(records, "latest")["run_id"].endswith("bbb333")
        assert ledger.find_record(records, "-1") is records[-1]
        assert ledger.find_record(records, "20260101T000000-aaa111") is records[0]
        assert ledger.find_record(records, "20260101T000001") is records[1]
        assert ledger.find_record(records, "2026") is None      # ambiguous
        assert ledger.find_record(records, "zzz") is None       # no match
        assert ledger.find_record([], "latest") is None


class TestDriftThresholds:
    BASE = [_record(f"b{i}", phases={"release": 0.10, "figures": 0.50})
            for i in range(3)]

    def test_regression_is_flagged_with_phase_name(self):
        slow = _record("cand", phases={"release": 0.90, "figures": 0.50})
        findings = drift.check_drift(self.BASE + [slow])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.kind == "timing" and finding.subject == "release"
        assert finding.run_id == "cand"
        assert "release" in finding.render() and "cand" in finding.render()

    def test_within_tolerance_passes(self):
        ok = _record("cand", phases={"release": 0.12, "figures": 0.55})
        assert drift.check_drift(self.BASE + [ok]) == []

    def test_noise_floor_guards_millisecond_phases(self):
        """A 20x relative blowup on a 10 ms phase is jitter, not drift."""
        base = [_record(f"b{i}", phases={"blip": 0.010}) for i in range(3)]
        jitter = _record("cand", phases={"blip": 0.200})
        assert drift.check_drift(base + [jitter]) == []

    def test_relative_tolerance_guards_slow_phases(self):
        """+0.3 s on a 1 s phase clears the noise floor but not the 50%
        relative bar."""
        base = [_record(f"b{i}", phases={"big": 1.00}) for i in range(3)]
        slower = _record("cand", phases={"big": 1.30})
        assert drift.check_drift(base + [slower]) == []

    def test_median_baseline_resists_outliers(self):
        """One historically slow run cannot mask a real regression."""
        base = [_record("b0", phases={"release": 0.10}),
                _record("b1", phases={"release": 5.00}),
                _record("b2", phases={"release": 0.10})]
        slow = _record("cand", phases={"release": 0.90})
        findings = drift.check_drift(base + [slow])
        assert [f.subject for f in findings] == ["release"]
        assert findings[0].baseline == pytest.approx(0.10)

    def test_fidelity_drift_flagged_and_direction_matters(self):
        base = [_record(f"b{i}", fidelity={"probe": 0.01}) for i in range(3)]
        worse = _record("cand", fidelity={"probe": 0.10})
        findings = drift.check_drift(base + [worse])
        assert [f.kind for f in findings] == ["fidelity"]
        assert findings[0].subject == "probe"
        # Moving *toward* the paper value is never drift.
        better = _record("cand2", fidelity={"probe": 0.0})
        assert drift.check_drift(base + [better]) == []

    def test_groups_are_independent(self):
        """A slow seed-8 run is not judged against the seed-7 baseline."""
        other = _record("cand", seed=8, phases={"release": 9.0})
        assert drift.check_drift(self.BASE + [other]) == []

    def test_faults_excluded_from_group_key(self):
        """A faulted run faces the clean baseline — that is the point."""
        faulted = _record("cand", faults_spec="phase.release:sleep",
                          phases={"release": 0.90, "figures": 0.50})
        assert drift.group_key(faulted) == drift.group_key(self.BASE[0])
        findings = drift.check_drift(self.BASE + [faulted])
        assert [f.subject for f in findings] == ["release"]

    def test_single_run_and_empty_ledger_pass(self):
        assert drift.check_drift([]) == []
        assert drift.check_drift([self.BASE[0]]) == []

    def test_absent_phases_are_not_drift(self):
        """A cached run has no release phase; that is not a regression."""
        cached = _record("cand", phases={"figures": 0.50})
        assert drift.check_drift(self.BASE + [cached]) == []

    def test_render_diff_verdict_lines(self):
        a = _record("ra", phases={"release": 0.10},
                    fidelity={"probe": 0.01, "other": 0.02})
        b = _record("rb", phases={"release": 0.12, "extra": 0.30},
                    fidelity={"probe": 0.01, "other": 0.02})
        text = drift.render_diff(a, b)
        assert "runs ra -> rb" in text
        assert "release" in text and "only B" in text
        assert "fidelity drift: none (2 probes within tolerance" in text

        drifted = _record("rc", phases={"release": 0.10},
                          fidelity={"probe": 0.30, "other": 0.02})
        text = drift.render_diff(a, drifted)
        assert "<- drift" in text
        assert "fidelity drift: 1 probe(s) moved away from the paper" in text


class TestRssDrift:
    """Two-sided peak-RSS guard: relative blowup AND absolute growth."""

    BASE = [_record(f"b{i}", peak_rss_mb=100.0) for i in range(3)]

    def test_regression_is_flagged(self):
        fat = _record("cand", peak_rss_mb=300.0)
        findings = drift.check_drift(self.BASE + [fat])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.kind == "rss" and finding.subject == "peak_rss_mb"
        assert finding.run_id == "cand"
        assert finding.baseline == pytest.approx(100.0)
        text = finding.render()
        assert "[RSS]" in text and "300MB" in text and "cand" in text

    def test_within_relative_tolerance_passes(self):
        """+40% on a 100 MB baseline clears the floor but not the 50% bar."""
        ok = _record("cand", peak_rss_mb=140.0)
        assert drift.check_drift(self.BASE + [ok]) == []

    def test_floor_guards_small_processes(self):
        """2.2x on a 40 MB baseline is interpreter noise, not drift."""
        base = [_record(f"b{i}", peak_rss_mb=40.0) for i in range(3)]
        small = _record("cand", peak_rss_mb=90.0)
        assert drift.check_drift(base + [small]) == []

    def test_median_baseline_resists_outliers(self):
        base = [_record("b0", peak_rss_mb=100.0),
                _record("b1", peak_rss_mb=900.0),
                _record("b2", peak_rss_mb=100.0)]
        fat = _record("cand", peak_rss_mb=400.0)
        findings = drift.check_drift(base + [fat])
        assert [f.kind for f in findings] == ["rss"]
        assert findings[0].baseline == pytest.approx(100.0)

    def test_records_without_peak_rss_do_not_participate(self):
        """Legacy records (no peak_rss_mb) neither alarm nor form a
        baseline; zero/garbage values are treated as absent."""
        legacy = _record("cand")
        assert drift.check_drift(self.BASE + [legacy]) == []

        base = [_record(f"b{i}") for i in range(3)]
        fat = _record("cand", peak_rss_mb=500.0)
        assert drift.check_drift(base + [fat]) == []

        zeros = [_record(f"b{i}", peak_rss_mb=0.0) for i in range(3)]
        assert drift.check_drift(zeros + [fat]) == []
        assert drift.check_drift(
            [dict(_record("b0"), peak_rss_mb="nan?")] * 3 + [fat]
        ) == []

    def test_check_drift_rss_tolerance_is_tunable(self):
        fat = _record("cand", peak_rss_mb=160.0)
        assert drift.check_drift(self.BASE + [fat]) == []
        findings = drift.check_drift(
            self.BASE + [fat], rss_tolerance=0.25, rss_floor_mb=10.0
        )
        assert [f.kind for f in findings] == ["rss"]


def _util_doc() -> dict:
    return {
        "value": 0.9, "busy_s": 3.6, "span_s": 2.0, "num_workers": 2,
        "workers": [
            {"pid": 11, "busy_s": 2.0, "intervals": [
                {"start_s": 0.0, "end_s": 2.0, "label": "shard 0"}]},
            {"pid": 12, "busy_s": 1.6, "intervals": [
                {"start_s": 0.2, "end_s": 1.8, "label": "shard 1"}]},
        ],
    }


def _timeline_doc() -> dict:
    return {
        "schema": 1, "interval_ms": 25.0, "num_samples": 3,
        "samples": [
            {"t_s": 0.0, "rss_mb": 50.0, "cpu_pct": 0.0,
             "open_fds": 8, "spill_mb": 0.0},
            {"t_s": 0.025, "rss_mb": 80.0, "cpu_pct": 90.0,
             "open_fds": 9, "spill_mb": 1.5},
            {"t_s": 0.05, "rss_mb": 70.0, "cpu_pct": 60.0,
             "open_fds": 8, "spill_mb": 1.5},
        ],
        "peak_rss_mb": 80.0, "mean_cpu_pct": 75.0,
        "max_open_fds": 9, "max_spill_mb": 1.5, "error": None,
    }


class TestRunsCli:
    def _seed_ledger(self, records):
        for record in records:
            assert ledger.append_record(record) is not None

    def test_runs_list_empty_and_populated(self, capsys):
        assert cli.main(["runs", "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

        self._seed_ledger([_record("run-aa"), _record("run-bb")])
        assert cli.main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "run-aa" in out and "run-bb" in out

    def test_runs_show(self, capsys):
        self._seed_ledger([
            _record("run-aa", phases={"release": 0.2},
                    fidelity={"probe": 0.01}),
        ])
        assert cli.main(["runs", "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "run run-aa" in out and "release" in out and "probe" in out

        assert cli.main(["runs", "show", "missing"]) == 2
        assert "no unique run" in capsys.readouterr().err

    def test_runs_diff_and_bad_refs(self, capsys):
        self._seed_ledger([
            _record("run-aa", fidelity={"probe": 0.01}),
            _record("run-bb", fidelity={"probe": 0.01}),
        ])
        assert cli.main(["runs", "diff", "run-aa", "latest"]) == 0
        out = capsys.readouterr().out
        assert "runs run-aa -> run-bb" in out
        assert "fidelity drift: none" in out

        assert cli.main(["runs", "diff", "run-aa", "nope"]) == 2

    def test_runs_check_verdicts(self, capsys):
        assert cli.main(["runs", "check"]) == 0
        assert "nothing to compare" in capsys.readouterr().out

        self._seed_ledger([_record(f"b{i}", phases={"release": 0.1})
                           for i in range(3)])
        assert cli.main(["runs", "check"]) == 0
        assert "OK" in capsys.readouterr().out

        self._seed_ledger([_record("slow", phases={"release": 0.9})])
        assert cli.main(["runs", "check"]) == 1
        out = capsys.readouterr().out
        assert "[TIMING]" in out and "'release'" in out

    def test_runs_report_writes_dashboard(self, tmp_path, capsys):
        self._seed_ledger([_record(f"r{i}", phases={"release": 0.1})
                           for i in range(2)])
        out_path = tmp_path / "dash.html"
        assert cli.main(["runs", "report", "--out", str(out_path)]) == 0
        assert "wrote run dashboard (2 runs)" in capsys.readouterr().out
        html = out_path.read_text()
        assert "<svg" in html and "release" in html
        # No sampled run yet: the utilization section explains how to get one.
        assert "Utilization timeline" in html and "--sample" in html

    def test_runs_report_renders_utilization_gantt(self, tmp_path, capsys):
        self._seed_ledger([
            _record("plain", phases={"release": 0.1}),
            _record("sampled", phases={"release": 0.1}, peak_rss_mb=80.0,
                    utilization=_util_doc(), timeline=_timeline_doc()),
        ])
        out_path = tmp_path / "dash.html"
        assert cli.main(["runs", "report", "--out", str(out_path)]) == 0
        capsys.readouterr()
        html = out_path.read_text()
        assert "Utilization timeline" in html
        assert "sampled" in html and "80" in html      # run id + peak RSS note
        assert html.count('fill-opacity="0.8"') == 2   # one rect per interval
        assert "pid 11" in html and "pid 12" in html   # legend lanes
        assert "rss_mb" in html                        # resource chart series

    def test_explicit_ledger_flag(self, tmp_path, capsys):
        alt = tmp_path / "alt.jsonl"
        ledger.append_record(_record("elsewhere"), alt)
        assert cli.main(["runs", "list", "--ledger", str(alt)]) == 0
        assert "elsewhere" in capsys.readouterr().out

    def test_no_ledger_env_disables_recording(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NO_LEDGER", "1")
        assert cli.main(["report", "--scale", "tiny", "--seed", "7"]) == 0
        capsys.readouterr()
        assert ledger.read_records() == []


class TestLegacyRecordHardening:
    """Ledgers accumulate records from earlier writers: phases as bare
    numbers, missing ``run_id``/``peak_rss_mb``/``top_ops``-style phase
    aggregates, or garbage values.  The history/drift views must skip the
    unreadable parts with a note, never traceback."""

    def _bench_guard(self):
        import importlib.util
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "scripts" / "bench_guard.py"
        )
        spec = importlib.util.spec_from_file_location("bench_guard", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _legacy_bench_records(self):
        v = ledger.LEDGER_SCHEMA_VERSION
        return [
            # No run_id, phases as bare floats (earliest writer shape).
            {"schema": v, "kind": "bench",
             "phases": {"group_by_median": 0.012}},
            # Malformed: aggregates and speedups in unreadable shapes.
            {"schema": v, "kind": "bench", "run_id": "20260101-malformed",
             "phases": {"group_by_median": "fast",
                        "plan.op.group_by": 1.5},
             "speedups_vs_seed": "n/a"},
            # Current shape, with plan.op.* operator aggregates.
            {"schema": v, "kind": "bench", "run_id": "20260102-abcdef-good",
             "phases": {"group_by_median": {"count": 1, "wall_s": 0.011,
                                            "cpu_s": 0.0},
                        "plan.op.group_by": {"count": 3, "wall_s": 0.004,
                                             "cpu_s": 0.003}},
             "speedups_vs_seed": {"group_by_median": 4.7}},
        ]

    def test_bench_history_top_skips_legacy_records(self, capsys):
        for record in self._legacy_bench_records():
            assert ledger.append_record(record) is not None
        bench_guard = self._bench_guard()
        assert bench_guard.history(top=3) == 0
        out = capsys.readouterr().out
        assert "mean-time trajectory" in out
        assert "group_by_median" in out
        assert "legacy" in out  # the skip is noted, not silent
        # The hotspot listing found the one readable plan.op.* record.
        assert "top 1 plan operators" in out
        assert "20260102-abcdef-good" in out

    def test_bench_history_top_with_no_readable_hotspots(self, capsys):
        v = ledger.LEDGER_SCHEMA_VERSION
        assert ledger.append_record(
            {"schema": v, "kind": "bench", "run_id": "20260101-x",
             "phases": {"plan.op.join": 2.0}}  # legacy bare-float agg
        ) is not None
        bench_guard = self._bench_guard()
        assert bench_guard.history(top=2) == 0
        out = capsys.readouterr().out
        assert "no recorded run carries plan.op.*" in out
        assert "legacy record(s) skipped" in out

    def test_runs_check_tolerates_legacy_phase_and_rss_shapes(self, capsys):
        v = ledger.LEDGER_SCHEMA_VERSION
        base = {
            "schema": v, "kind": "study", "command": "report",
            "config": {"scale": "tiny", "seed": 7},
        }
        legacy = [
            # Bare-float phases, no peak_rss_mb at all.
            base | {"run_id": "r1", "phases": {"release": 0.1}},
            # Garbage peak_rss_mb, phase aggregate not a mapping.
            base | {"run_id": "r2", "phases": {"release": [0.1]},
                    "peak_rss_mb": "lots"},
            # Current shape.
            base | {"run_id": "r3",
                    "phases": {"release": {"count": 1, "wall_s": 0.11,
                                           "cpu_s": 0.1}},
                    "peak_rss_mb": 80.0},
        ]
        for record in legacy:
            assert ledger.append_record(record) is not None
        assert cli.main(["runs", "check"]) == 0
        assert "OK" in capsys.readouterr().out

        # A genuine regression is still caught across the legacy baseline.
        assert ledger.append_record(
            base | {"run_id": "r4",
                    "phases": {"release": {"count": 1, "wall_s": 0.9,
                                           "cpu_s": 0.9}},
                    "peak_rss_mb": 500.0}
        ) is not None
        assert cli.main(["runs", "check"]) == 1
        out = capsys.readouterr().out
        assert "[TIMING]" in out and "'release'" in out

    def test_drift_helpers_coerce_legacy_values(self):
        walls = drift._phase_walls({
            "phases": {"release": 0.25, "merge": {"wall_s": "0.5"},
                       "bad": object(), "worse": {"wall_s": None}},
        })
        assert walls == {"release": 0.25, "merge": 0.5}
        assert drift._phase_walls({"phases": ["not", "a", "dict"]}) == {}
        assert drift._fidelity_devs({"fidelity": {"p": 0.7}}) == {}
        assert drift._peak_rss({"peak_rss_mb": "garbage"}) is None


class TestAcceptance:
    """ISSUE acceptance: clean runs diff drift-free; an injected slow
    phase makes ``repro runs check`` exit nonzero naming that phase."""

    def test_two_clean_runs_then_injected_slow_phase(self, capsys):
        for _ in range(2):
            assert cli.main([
                "report", "--scale", "tiny", "--seed", "7", "--no-cache",
            ]) == 0
        capsys.readouterr()

        records = ledger.read_records()
        assert len(records) == 2
        first = records[0]["run_id"]
        assert records[0]["run_id"] != records[1]["run_id"]
        for record in records:
            assert record["kind"] == "study" and record["command"] == "report"
            assert record["phases"].get("release", {}).get("count") == 1
            assert len(record.get("fidelity") or {}) >= 5

        assert cli.main(["runs", "diff", first, "latest"]) == 0
        assert "fidelity drift: none" in capsys.readouterr().out

        assert cli.main(["runs", "check"]) == 0
        assert "OK" in capsys.readouterr().out

        # Third run with the fault-grammar slow phase: check must fail
        # and name the offending phase.
        assert cli.main([
            "report", "--scale", "tiny", "--seed", "7", "--no-cache",
            "--faults", "phase.release:sleep",
        ]) == 0
        faults.configure(None)
        capsys.readouterr()

        assert cli.main(["runs", "check"]) == 1
        out = capsys.readouterr().out
        assert "[TIMING]" in out and "'release'" in out
