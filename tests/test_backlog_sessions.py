"""Tests for backlog and attention-span (session) analyses."""

import numpy as np
import pytest

from repro.analysis.marketplace import weekly_backlog
from repro.analysis.workers import SessionStatistics, session_statistics
from repro.dataset.release import ReleasedDataset
from repro.tables import Table


class TestBacklog:
    def test_never_negative_much(self, study, released, enriched):
        """Completions can't outpace postings except via clamping jitter."""
        backlog = weekly_backlog(
            released, enriched, num_weeks=study.config.num_weeks
        )
        assert backlog.min() >= -1e-6

    def test_fully_drained_at_horizon(self, study, released, enriched):
        """Every released instance completes within the calendar (clamped),
        so the backlog returns to zero."""
        backlog = weekly_backlog(
            released, enriched, num_weeks=study.config.num_weeks
        )
        assert backlog[-1] == pytest.approx(0.0)

    def test_peaks_during_high_activity(self, study, released, enriched):
        backlog = weekly_backlog(
            released, enriched, num_weeks=study.config.num_weeks
        )
        switch = study.config.regime_switch_week
        assert backlog[switch:].max() >= backlog[:switch].max()


def _release_from_rows(rows):
    instances = Table.from_rows(rows)
    catalog = Table(
        {
            "batch_id": [0],
            "title": ["t"],
            "created_at": [0],
            "sampled": [True],
        }
    )
    return ReleasedDataset(
        batch_catalog=catalog, batch_html={}, instances=instances
    )


def _row(worker, start, end):
    return {
        "batch_id": 0, "item_id": 0, "worker_id": worker,
        "source": "s", "country": "c",
        "start_time": start, "end_time": end,
        "trust": 0.9, "response": "x",
    }


class TestSessions:
    def test_single_session(self):
        released = _release_from_rows(
            [_row(1, 0, 100), _row(1, 150, 250), _row(1, 300, 400)]
        )
        stats = session_statistics(released, gap_seconds=600)
        assert stats.num_sessions == 1
        assert stats.tasks_per_session[0] == 3
        assert stats.session_lengths_seconds[0] == 400

    def test_gap_splits_sessions(self):
        released = _release_from_rows(
            [_row(1, 0, 100), _row(1, 5000, 5100)]
        )
        stats = session_statistics(released, gap_seconds=600)
        assert stats.num_sessions == 2
        assert list(stats.tasks_per_session) == [1, 1]

    def test_workers_never_share_sessions(self):
        released = _release_from_rows(
            [_row(1, 0, 100), _row(2, 100, 200)]
        )
        stats = session_statistics(released, gap_seconds=10**9)
        assert stats.num_sessions == 2

    def test_sessions_per_worker(self):
        released = _release_from_rows(
            [_row(1, 0, 100), _row(1, 10_000, 10_100), _row(2, 0, 50)]
        )
        stats = session_statistics(released, gap_seconds=600)
        assert sorted(stats.sessions_per_worker.tolist()) == [1.0, 2.0]

    def test_on_study_data(self, released):
        stats = session_statistics(released)
        assert isinstance(stats, SessionStatistics)
        assert stats.num_sessions > 0
        # Total tasks across sessions equals total instances.
        assert stats.tasks_per_session.sum() == released.instances.num_rows
        # Attention spans are short for most sessions (paper §5.4: most
        # workers spend well under an hour per day).
        assert stats.median_session_minutes() < 120

    def test_bigger_gap_merges_sessions(self, released):
        tight = session_statistics(released, gap_seconds=300)
        loose = session_statistics(released, gap_seconds=7200)
        assert loose.num_sessions <= tight.num_sessions
