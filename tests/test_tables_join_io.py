"""Unit tests for repro.tables.join and repro.tables.io."""

import numpy as np
import pytest

from repro.tables import (
    Table,
    hash_join,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.tables.table import SchemaError


def left():
    return Table({"k": [1, 2, 3, 3], "a": ["p", "q", "r", "s"]})


def right():
    return Table({"k": [1, 3, 3, 4], "b": [10.0, 20.0, 30.0, 40.0]})


class TestJoin:
    def test_inner_join_cardinality(self):
        j = hash_join(left(), right(), on="k")
        # k=1 matches once; k=3 x k=3 is 2*2; k=2 and k=4 drop.
        assert j.num_rows == 5

    def test_inner_join_values(self):
        j = hash_join(left(), right(), on="k").sort_by(["k", "b"])
        assert list(j["k"]) == [1, 3, 3, 3, 3]

    def test_left_join_keeps_unmatched(self):
        j = hash_join(left(), right(), on="k", how="left")
        assert j.num_rows == 6
        unmatched = j.filter(j["k"] == 2)
        assert np.isnan(unmatched["b"][0])

    def test_left_join_string_null(self):
        j = hash_join(right(), left(), on="k", how="left")
        k4 = j.filter(j["k"] == 4)
        assert k4["a"][0] is None

    def test_multi_key_join(self):
        a = Table({"x": [1, 1, 2], "y": ["u", "v", "u"], "val": [1, 2, 3]})
        b = Table({"x": [1, 2], "y": ["v", "u"], "other": [9, 8]})
        j = hash_join(a, b, on=["x", "y"])
        assert sorted(j["other"]) == [8, 9]

    def test_column_collision_suffix(self):
        a = Table({"k": [1], "v": [1]})
        b = Table({"k": [1], "v": [2]})
        j = hash_join(a, b, on="k")
        assert "v_right" in j

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            hash_join(left(), right(), on="nope")

    def test_bad_how_rejected(self):
        with pytest.raises(SchemaError):
            hash_join(left(), right(), on="k", how="outer")

    def test_empty_right_inner(self):
        empty = Table.empty({"k": "int", "b": "float"})
        j = hash_join(left(), empty, on="k")
        assert j.num_rows == 0


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        t = Table(
            {
                "i": [1, 2, 3],
                "f": [1.5, float("nan"), 2.5],
                "s": ["x", None, "z"],
                "b": [True, False, True],
            }
        )
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.schema() == {"i": "int", "f": "float", "s": "str", "b": "bool"}
        assert back == t

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        t = read_csv(path)
        assert t.num_rows == 0
        assert t.column_names == ["a", "b"]

    def test_int_with_missing_becomes_float(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("a,b\n1,x\n,y\n3,z\n")
        t = read_csv(path)
        assert t.schema()["a"] == "float"
        assert np.isnan(t["a"][1])

    def test_numeric_strings_stay_numeric(self, tmp_path):
        t = Table({"a": [0.25, 1e10, -3.5]})
        path = tmp_path / "n.csv"
        write_csv(t, path)
        assert read_csv(path) == t


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        t = Table({"i": [1, 2], "s": ["a", "b"], "f": [0.5, float("nan")]})
        path = tmp_path / "t.jsonl"
        write_jsonl(t, path)
        back = read_jsonl(path)
        assert back.num_rows == 2
        assert back["s"][1] == "b"
        assert np.isnan(back["f"][1])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path).num_rows == 2
