"""Seed-sweep robustness: headline shapes hold beyond the pinned seed.

Calibration must not be overfit to seed 7.  These tests run the tiny
pipeline at a few other seeds and check the same coarse bands the
validation checklist uses.  (Effect-direction checks are excluded: at tiny
scale they are legitimately noisy; the medium-scale benchmark pins them.)
"""

import numpy as np
import pytest

from repro import build_study
from repro.validation import validate_study


@pytest.fixture(scope="module", params=[21, 99])
def swept_study(request):
    return build_study("tiny", seed=request.param)


class TestSeedRobustness:
    def test_headline_checks_hold(self, swept_study):
        report = validate_study(swept_study)
        headline = [c for c in report.checks if not c.name.startswith("effect")]
        failing = [c.render() for c in headline if not c.ok]
        assert not failing, failing

    def test_most_effect_directions_hold(self, swept_study):
        report = validate_study(swept_study)
        effects = [c for c in report.checks if c.name.startswith("effect")]
        assert sum(c.ok for c in effects) >= len(effects) - 3

    def test_clustering_still_exact(self, swept_study):
        truth = len(
            {
                int(swept_study.state.batches.task_idx[b])
                for b in swept_study.released.batch_html
            }
        )
        assert swept_study.enriched.num_clusters == truth

    def test_instances_nontrivial(self, swept_study):
        assert swept_study.released.instances.num_rows > 5_000
