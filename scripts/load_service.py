#!/usr/bin/env python
"""Mixed read/ingest load harness for the incremental service.

Starts an in-process ``repro.service`` server (the same
``ThreadingHTTPServer`` path ``repro serve --ingest`` uses), pre-folds a
synthetic standing state, then drives it from concurrent keep-alive
clients with the service's steady-state mix: mostly cached table reads
(some conditional, exercising the 304 path), with a small fresh
micro-batch ingested every ``--ingest-every`` operations — so the
response cache is continuously invalidated and re-filled while being
read, which is exactly the contention the ETag/versioning design must
absorb.

Acceptance (exit 1 when violated):

- sustained throughput >= ``--min-rps`` requests/s (default 1000);
- p99 latency across all operations <= ``--p99-budget-ms`` (default 150).

``--update-baseline`` records the measured numbers under the
``service_load`` key of ``BENCH_substrate.json``, preserving every other
key (``scripts/bench_guard.py`` owns the rest of the file).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_substrate.json"

#: Routes the read side cycles through — the standing aggregates a
#: dashboard polls (small bodies; no enrichment pass under load).  The
#: full ``/tables/instances`` dump is excluded: its body grows with every
#: ingest, so steady-state load on it measures JSON size, not the server.
READ_ROUTES = (
    "/tables/batch_rollup",
    "/tables/trust_cdf",
    "/tables/duration_hist",
    "/tables/catalog",
)


def _payload(config, n_rows: int, id_base: int, seed: int) -> dict:
    from repro import cache as study_cache
    from repro.service.codec import WIRE_SCHEMA_VERSION, encode_table
    from repro.tables import Table

    rng = np.random.default_rng(seed)
    sources = np.array(["own", "chan-a", "chan-b"], dtype=object)
    countries = np.array(["US", "IN", "GB", "PH"], dtype=object)
    start = rng.integers(0, 10**6, size=n_rows)
    table = Table({
        "instance_id": np.arange(id_base, id_base + n_rows, dtype=np.int64),
        "batch_id": rng.integers(0, 200, size=n_rows),
        "item_id": rng.integers(0, 1_000, size=n_rows),
        "worker_id": rng.integers(0, 50, size=n_rows),
        "source": sources[rng.integers(0, len(sources), size=n_rows)],
        "country": countries[rng.integers(0, len(countries), size=n_rows)],
        "start_time": start,
        "end_time": start + rng.integers(1, 3_600, size=n_rows),
        "trust": rng.random(size=n_rows),
        "response": np.array(
            [f"resp-{id_base + i}" for i in range(n_rows)], dtype=object
        ),
    }, copy=False)
    catalog = Table({
        "batch_id": np.arange(id_base, id_base + 1, dtype=np.int64),
        "title": np.array([f"task {id_base}"], dtype=object),
        "created_at": np.array([id_base], dtype=np.int64),
        "sampled": np.array([True]),
    })
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "config_key": study_cache.study_key(config),
        "instances": encode_table(table),
        "catalog": encode_table(catalog),
    }


class IdAllocator:
    """Hands out disjoint id ranges so concurrent ingests never clash."""

    def __init__(self, start: int):
        self._next = start
        self._lock = threading.Lock()

    def take(self, n: int) -> int:
        with self._lock:
            base = self._next
            self._next += n
            return base


def _worker(
    port: int,
    config,
    deadline: float,
    ingest_every: int,
    batch_rows: int,
    ids: IdAllocator,
    out: list,
    errors: list,
):
    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", port)
    etags: dict[str, str] = {}
    samples: list[tuple[str, float]] = []
    op = 0
    try:
        while time.perf_counter() < deadline:
            op += 1
            t0 = time.perf_counter()
            if ingest_every and op % ingest_every == 0:
                base = ids.take(max(batch_rows, 1))
                client.ingest(
                    _payload(config, batch_rows, base, seed=base)
                )
                samples.append(("ingest", time.perf_counter() - t0))
            else:
                path = READ_ROUTES[op % len(READ_ROUTES)]
                status, headers, body = client.get(
                    path, etag=etags.get(path)
                )
                if status == 200:
                    etags[path] = headers["etag"]
                    kind = "read"
                elif status == 304:
                    kind = "read_304"
                else:
                    raise RuntimeError(f"GET {path} -> {status}")
                samples.append((kind, time.perf_counter() - t0))
    except Exception as exc:  # noqa: BLE001 - reported by the main thread
        errors.append(f"{type(exc).__name__}: {exc}")
    finally:
        client.close()
        out.extend(samples)


def _percentile(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q)) if latencies else 0.0


def run_load(args) -> dict:
    from repro.obs.live import TelemetryServer
    from repro.service import ServiceApp
    from repro.simulator.config import SimulationConfig

    config = SimulationConfig.preset("tiny", seed=7)
    app = ServiceApp(config)
    app.state.ingest(_payload(config, args.standing_rows, 0, seed=1))
    server = TelemetryServer(port=0, app=app).start()
    ids = IdAllocator(start=10**7)
    samples: list[tuple[str, float]] = []
    errors: list[str] = []
    try:
        deadline = time.perf_counter() + args.duration
        t_start = time.perf_counter()
        threads = [
            threading.Thread(
                target=_worker,
                args=(server.port, config, deadline, args.ingest_every,
                      args.batch_rows, ids, samples, errors),
                daemon=True,
            )
            for _ in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t_start
    finally:
        server.stop()
    if errors:
        raise RuntimeError(f"{len(errors)} worker error(s): {errors[:3]}")

    latencies = [s for _, s in samples]
    by_kind: dict[str, int] = {}
    for kind, _ in samples:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return {
        "clients": args.clients,
        "duration_s": round(elapsed, 3),
        "requests": len(samples),
        "req_s": round(len(samples) / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
        "mix": by_kind,
        "ingested_rows": by_kind.get("ingest", 0) * args.batch_rows,
    }


def update_baseline(result: dict) -> None:
    baseline = (
        json.loads(BASELINE_PATH.read_text())
        if BASELINE_PATH.exists() else {}
    )
    baseline["service_load"] = result
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"load_service: recorded service_load in {BASELINE_PATH.name}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of sustained load (default 4)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--ingest-every", type=int, default=100,
                        help="every Nth op per client is an ingest "
                        "(default 100; 0 disables ingests)")
    parser.add_argument("--batch-rows", type=int, default=40,
                        help="instance rows per ingested micro-batch")
    parser.add_argument("--standing-rows", type=int, default=10_000,
                        help="rows pre-folded before load starts")
    parser.add_argument("--min-rps", type=float, default=1000.0,
                        help="throughput floor, requests/s (default 1000)")
    parser.add_argument("--p99-budget-ms", type=float, default=150.0,
                        help="p99 latency budget in ms (default 150)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record results under 'service_load' in "
                        f"{BASELINE_PATH.name}")
    parser.add_argument("--json", action="store_true",
                        help="print the result as JSON only")
    args = parser.parse_args()

    result = run_load(args)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(
            f"load_service: {result['requests']} requests in "
            f"{result['duration_s']}s from {args.clients} clients -> "
            f"{result['req_s']} req/s "
            f"(p50 {result['p50_ms']} ms, p99 {result['p99_ms']} ms)"
        )
        print(f"load_service: mix {result['mix']}")
    if args.update_baseline:
        update_baseline(result)

    failures = []
    if result["req_s"] < args.min_rps:
        failures.append(
            f"throughput {result['req_s']} req/s < floor {args.min_rps}"
        )
    if result["p99_ms"] > args.p99_budget_ms:
        failures.append(
            f"p99 {result['p99_ms']} ms > budget {args.p99_budget_ms} ms"
        )
    if failures:
        for line in failures:
            print(f"load_service: FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"load_service: OK (>= {args.min_rps:.0f} req/s, "
        f"p99 <= {args.p99_budget_ms:.0f} ms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
