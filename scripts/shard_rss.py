#!/usr/bin/env python
"""Measure peak RSS and wall time: sharded vs monolithic study build.

Peak RSS is a process-lifetime high-water mark, so each configuration runs
in its own fresh subprocess with a private cold cache directory (the study
cache is off; the shard spill store is on — spilling is what bounds the
sharded build's memory).  Inside the child, a
:class:`repro.obs.sampler.ResourceSampler` records the continuous RSS
timeline; the reported peak is the sampler's timeline peak sharpened by
the kernel's exact high-water mark (``repro.obs.sampler.peak_rss_mb``).
Prints a comparison table and the peak-RSS ratio the acceptance criterion
reads (sharded < 60% of monolithic at ``large`` scale).

Usage::

    python scripts/shard_rss.py [--scale large] [--shards 4]
    python scripts/shard_rss.py --scale xlarge --sweep 8,16

``--sweep K1,K2,...`` skips the monolithic reference and instead builds the
study sharded at each listed K, asserting the peak RSS stays *flat* as the
shard count grows (within :data:`SWEEP_FLATNESS`) — the spill discipline's
contract at scales where a monolithic build would not fit comfortably in
memory (``xlarge`` is ~27M released instances).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``--sweep`` tolerance: peak RSS at the largest K may exceed the peak at
#: the smallest K by at most this factor.  With per-shard spilling, a
#: *larger* K means *smaller* shards, so RSS should be flat or falling;
#: the headroom covers allocator and merge-buffer noise.
SWEEP_FLATNESS = 1.25


def _child(scale: str, shards: int) -> None:
    import time

    sys.path.insert(0, str(REPO / "src"))
    from repro import build_study
    from repro.obs import sampler

    sampling = sampler.ResourceSampler(interval_ms=20.0).start()
    t0 = time.perf_counter()
    study = build_study(
        scale, seed=7, cache=False, shards=shards if shards > 1 else None
    )
    wall = time.perf_counter() - t0
    timeline = sampling.stop()
    print(json.dumps({
        "wall_s": round(wall, 2),
        # The timeline can only undershoot between samples; the kernel's
        # high-water mark (also surfaced by the sampler module) is exact.
        "peak_rss_mb": round(
            max(timeline["peak_rss_mb"], sampler.peak_rss_mb()), 1
        ),
        "num_samples": timeline["num_samples"],
        "mean_cpu_pct": timeline["mean_cpu_pct"],
        "instances": study.released.instances.num_rows,
        "clusters": study.enriched.num_clusters,
    }))


def _measure(scale: str, shards: int, env_extra: dict) -> dict:
    import os

    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = tmp  # cold and hermetic; spill lives here
        env["REPRO_NO_LEDGER"] = "1"
        env.update(env_extra)
        out = subprocess.run(
            [sys.executable, __file__, "--child", scale, str(shards)],
            cwd=REPO,
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="large")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--workers", default=None,
        help="REPRO_WORKERS for the sharded run (default: serial)",
    )
    parser.add_argument(
        "--sweep", default=None, metavar="K1,K2,...",
        help="sharded-only mode: build at each shard count and assert the "
        "peak RSS stays flat (no monolithic reference build)",
    )
    parser.add_argument("--child", nargs=2, metavar=("SCALE", "SHARDS"))
    args = parser.parse_args(argv)

    if args.child:
        _child(args.child[0], int(args.child[1]))
        return 0

    extra = {"REPRO_WORKERS": args.workers} if args.workers else {}

    if args.sweep:
        ks = sorted({int(k) for k in args.sweep.split(",")})
        if len(ks) < 2 or min(ks) < 2:
            print("FAIL: --sweep needs >= 2 distinct shard counts, all >= 2",
                  file=sys.stderr)
            return 2
        runs = []
        for k in ks:
            print(
                f"measuring sharded {args.scale} build "
                f"(--shards {k}, fresh process)..."
            )
            runs.append((k, _measure(args.scale, k, extra)))
        print(f"\n{'build':<28} {'wall':>9} {'peak RSS':>10} {'instances':>11}")
        for k, r in runs:
            print(
                f"{f'sharded {args.scale} (K={k})':<28} "
                f"{r['wall_s']:>8.1f}s {r['peak_rss_mb']:>8.1f}MB "
                f"{r['instances']:>11,}"
            )
        if len({r["instances"] for _, r in runs}) != 1:
            print("FAIL: instance counts differ across shard counts",
                  file=sys.stderr)
            return 1
        base_k, base = runs[0]
        worst_k, worst = max(runs, key=lambda kr: kr[1]["peak_rss_mb"])
        ratio = worst["peak_rss_mb"] / base["peak_rss_mb"]
        print(
            f"\npeak RSS ratio (K={worst_k} / K={base_k}): {ratio:.2f} "
            f"(flatness bound {SWEEP_FLATNESS:.2f})"
        )
        if ratio > SWEEP_FLATNESS:
            print(
                f"FAIL: peak RSS grows with shard count "
                f"(K={worst_k} is {ratio:.2f}x K={base_k})",
                file=sys.stderr,
            )
            return 1
        print("OK: peak RSS is flat across shard counts")
        return 0

    print(f"measuring monolithic {args.scale} build (fresh process)...")
    mono = _measure(args.scale, 1, {})
    print(
        f"measuring sharded {args.scale} build "
        f"(--shards {args.shards}, fresh process)..."
    )
    sharded = _measure(args.scale, args.shards, extra)

    assert sharded["instances"] == mono["instances"]
    ratio = sharded["peak_rss_mb"] / mono["peak_rss_mb"]
    print(f"\n{'build':<28} {'wall':>9} {'peak RSS':>10} {'instances':>11}")
    for name, r in (
        (f"monolithic {args.scale}", mono),
        (f"sharded {args.scale} (K={args.shards})", sharded),
    ):
        print(
            f"{name:<28} {r['wall_s']:>8.1f}s {r['peak_rss_mb']:>8.1f}MB "
            f"{r['instances']:>11,}"
        )
    print(f"\npeak RSS ratio (sharded / monolithic): {ratio:.2f}")
    if ratio >= 0.60:
        print("FAIL: sharded peak RSS is not < 60% of monolithic", file=sys.stderr)
        return 1
    print("OK: sharded peak RSS < 60% of monolithic")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
