#!/usr/bin/env bash
# Reproduce everything: tests, figures, benchmarks, validation.
#
# Usage: scripts/reproduce_all.sh [output_dir]
#
# Produces, under the output directory (default: ./reproduction_output):
#   test_output.txt    - full unit/integration/property test run
#   bench_guard.txt    - substrate perf guard vs BENCH_substrate.json
#   bench_output.txt   - per-figure benchmark run (paper shapes asserted)
#   bench_report.txt   - the paper-vs-measured report (copied from repo root)
#   validation.txt     - the calibration checklist at small scale
#   trace_medium.json  - span trace of an uncached medium-scale report run
#   trace_summary.txt  - per-phase wall/CPU totals from that trace
#   figures/           - every paper figure as SVG
#   dataset/           - an exported released dataset (small scale)
#   workload.json      - the derived crowdsourcing workload

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-reproduction_output}"
mkdir -p "$OUT"

echo "== 1/8 tests =="
python -m pytest tests/ 2>&1 | tee "$OUT/test_output.txt" | tail -1

echo "== 2/8 substrate bench guard (fails on >25% regression vs BENCH_substrate.json) =="
python scripts/bench_guard.py 2>&1 | tee "$OUT/bench_guard.txt" | tail -1

echo "== 3/8 benchmarks (medium scale, regenerates every table & figure) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$OUT/bench_output.txt" | tail -1
cp bench_report.txt "$OUT/bench_report.txt"

echo "== 4/8 validation checklist =="
python -m repro validate --scale small --seed 7 2>&1 | tee "$OUT/validation.txt" | tail -1

echo "== 5/8 traced medium-scale report (writes trace_medium.json) =="
python -m repro report --scale medium --seed 7 --no-cache \
    --trace --trace-out "$OUT/trace_medium.json" > /dev/null
python -m repro trace "$OUT/trace_medium.json" --no-tree > "$OUT/trace_summary.txt"
head -7 "$OUT/trace_summary.txt"

echo "== 6/8 SVG figures =="
python -m repro figures --scale small --seed 7 --out "$OUT/figures"

echo "== 7/8 dataset export =="
python -m repro simulate --scale small --seed 7 --out "$OUT/dataset"

echo "== 8/8 workload derivation =="
python -m repro workload --scale small --seed 7 --out "$OUT/workload.json"

echo "done: $OUT"
