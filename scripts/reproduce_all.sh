#!/usr/bin/env bash
# Reproduce everything: tests, figures, benchmarks, validation.
#
# Usage: scripts/reproduce_all.sh [output_dir]
#
# Produces, under the output directory (default: ./reproduction_output):
#   test_output.txt    - full unit/integration/property test run
#   test_workers2.txt  - the same suite with REPRO_WORKERS=2 (pool paths hot)
#   coverage_gate.txt  - line-coverage gate over the shard + tables suites
#   bench_guard.txt    - substrate perf guard vs BENCH_substrate.json
#   bench_output.txt   - per-figure benchmark run (paper shapes asserted)
#   bench_report.txt   - the paper-vs-measured report (copied from repo root)
#   validation.txt     - the calibration checklist at small scale
#   trace_medium.json  - span trace of an uncached medium-scale report run
#   trace_summary.txt  - per-phase wall/CPU totals from that trace
#   report_clean.txt   - medium-scale report, healthy environment
#   report_faulted.txt - the same report under injected faults (must diff clean)
#   report_sharded.txt - the same report built over 4 shards (must diff clean)
#   report_skewed.txt  - the 4-shard report with an injected straggler shard
#                        under a live pool: work stealing reschedules, bytes
#                        must not change (must diff clean)
#   report_eager.txt   - the same report with the lazy query engine disabled
#                        via REPRO_TABLES_EAGER=1 (must diff clean)
#   report_sampled.txt - the same report with --sample resource telemetry
#                        recording a utilization timeline (must diff clean)
#   report_live.txt    - the 4-shard report built with --live while curls
#                        hit /metrics, /events, and / (must diff clean)
#   live_metrics.txt   - a mid-build Prometheus /metrics scrape of that run
#   figures/           - every paper figure as SVG
#   dataset/           - an exported released dataset (small scale)
#   workload.json      - the derived crowdsourcing workload
#   ledger/            - the persistent run ledger recorded by this pipeline
#   runs_report.html   - dashboard over the ledger (repro runs report)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-reproduction_output}"
mkdir -p "$OUT"

# Every study/bench run below records into a pipeline-local ledger, so the
# final drift check compares this pipeline's runs against each other.
export REPRO_LEDGER_DIR="$OUT/ledger"

echo "== 1/17 tests =="
python -m pytest tests/ 2>&1 | tee "$OUT/test_output.txt" | tail -1

echo "== 2/17 tests again with a live process pool (REPRO_WORKERS=2) =="
REPRO_WORKERS=2 python -m pytest tests/ 2>&1 | tee "$OUT/test_workers2.txt" | tail -1

echo "== 3/17 coverage gate (src/repro/{shard,tables,obs} >= 85%) =="
python scripts/coverage_gate.py 2>&1 | tee "$OUT/coverage_gate.txt" | tail -2

echo "== 4/17 substrate bench guard (fails on >25% regression vs BENCH_substrate.json) =="
python scripts/bench_guard.py 2>&1 | tee "$OUT/bench_guard.txt" | tail -1

echo "== 5/17 benchmarks (medium scale, regenerates every table & figure) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$OUT/bench_output.txt" | tail -1
cp bench_report.txt "$OUT/bench_report.txt"

echo "== 6/17 validation checklist =="
python -m repro validate --scale small --seed 7 2>&1 | tee "$OUT/validation.txt" | tail -1

echo "== 7/17 traced medium-scale report (writes trace_medium.json) =="
python -m repro report --scale medium --seed 7 --no-cache \
    --trace --trace-out "$OUT/trace_medium.json" > /dev/null
python -m repro trace "$OUT/trace_medium.json" --no-tree > "$OUT/trace_summary.txt"
head -7 "$OUT/trace_summary.txt"

echo "== 8/17 failure injection (faulted medium report must match the clean one) =="
python -m repro report --scale medium --seed 7 --no-cache \
    > "$OUT/report_clean.txt"
# REPRO_NO_LEDGER: a deliberately degraded diagnostic run must not become a
# baseline (or a candidate) for the drift check in step 17.
REPRO_CACHE_DIR="$OUT/fault_cache" REPRO_WORKERS=2 PYTHONWARNINGS=ignore \
    REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 \
    --faults 'cache.write:fail@1,pool.spawn:fail@1,pool.chunk:fail@1' \
    > "$OUT/report_faulted.txt"
diff "$OUT/report_clean.txt" "$OUT/report_faulted.txt"   # set -e: a diff is fatal
rm -rf "$OUT/fault_cache"
echo "faulted run identical to clean run"

echo "== 9/17 sharded execution (4-shard medium report must match the monolithic one) =="
# A private cache dir forces a genuine sharded build: the diff must prove
# byte identity of the pipeline, not a warm hit on the monolithic entry.
REPRO_CACHE_DIR="$OUT/shard_cache" \
    python -m repro report --scale medium --seed 7 --shards 4 \
    > "$OUT/report_sharded.txt"
diff "$OUT/report_clean.txt" "$OUT/report_sharded.txt"   # set -e: a diff is fatal
rm -rf "$OUT/shard_cache"
echo "sharded run identical to monolithic run"

echo "== 10/17 skewed shards (straggler + work stealing must not change bytes) =="
# shard.build:sleep@1 makes shard 0 a deterministic straggler; under a live
# 2-worker pool the as-completed dispatcher reschedules the remaining shards
# around it.  Scheduling must never leak into the output bytes.
REPRO_CACHE_DIR="$OUT/skew_cache" REPRO_WORKERS=2 REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 --shards 4 \
    --faults 'shard.build:sleep@1' \
    > "$OUT/report_skewed.txt"
diff "$OUT/report_clean.txt" "$OUT/report_skewed.txt"   # set -e: a diff is fatal
rm -rf "$OUT/skew_cache"
echo "skewed sharded run identical to clean run"

echo "== 11/17 lazy query engine off (REPRO_TABLES_EAGER=1 report must match the lazy one) =="
# A private cache dir forces a genuine eager rebuild; the diff proves the
# plan optimizer and parallel kernel dispatch never change a single byte.
REPRO_CACHE_DIR="$OUT/eager_cache" REPRO_TABLES_EAGER=1 REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 \
    > "$OUT/report_eager.txt"
diff "$OUT/report_clean.txt" "$OUT/report_eager.txt"   # set -e: a diff is fatal
rm -rf "$OUT/eager_cache"
echo "eager-engine run identical to lazy-engine run"

echo "== 12/17 resource telemetry (sampled 4-shard medium report must match the clean one) =="
# The sampler writes only into the run record, never to stdout: a sampled
# build must stay byte-identical.  A private cache dir forces a genuine
# sharded build so the record carries per-shard utilization intervals.
REPRO_CACHE_DIR="$OUT/sample_cache" \
    python -m repro report --scale medium --seed 7 --shards 4 --sample 25 \
    > "$OUT/report_sampled.txt"
diff "$OUT/report_clean.txt" "$OUT/report_sampled.txt"   # set -e: a diff is fatal
rm -rf "$OUT/sample_cache"
echo "sampled run identical to clean run"
python -m repro plan --scale tiny --seed 7 | tail -7

echo "== 13/17 live telemetry (served + probed 4-shard medium report must match the clean one) =="
# --live serves /metrics (Prometheus), /events (SSE), and the dashboard
# from inside the build process; the URL goes to stderr and the server
# never writes stdout, so a build polled and streamed mid-flight must stay
# byte-identical.  A private cache dir forces a genuine sharded build so
# shard progress events actually flow while the probes watch.
REPRO_CACHE_DIR="$OUT/live_cache" REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 --shards 4 --live 8741 \
    > "$OUT/report_live.txt" 2> "$OUT/live_stderr.txt" &
LIVE_PID=$!
python - "$OUT" <<'EOF'
import json, sys, time, urllib.request

out, base = sys.argv[1], "http://127.0.0.1:8741"
deadline = time.monotonic() + 120.0
while True:  # wait for the in-build server to come up
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=1) as resp:
            assert json.loads(resp.read())["status"] == "ok"
        break
    except Exception:
        if time.monotonic() > deadline:
            raise SystemExit("live telemetry server never came up")
        time.sleep(0.1)
with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
    open(f"{out}/live_metrics.txt", "w").write(resp.read().decode())
with urllib.request.urlopen(
    base + "/events?limit=1&heartbeat=0.5", timeout=60
) as resp:
    stream = resp.read().decode()
assert "event: hello" in stream and "data: " in stream, stream
with urllib.request.urlopen(base + "/", timeout=10) as resp:
    assert "EventSource('/events')" in resp.read().decode()
print("live probes ok: /metrics, /events, and / all answered mid-build")
EOF
wait "$LIVE_PID"                                         # set -e: build failure is fatal
diff "$OUT/report_clean.txt" "$OUT/report_live.txt"      # set -e: a diff is fatal
grep -q '^repro_' "$OUT/live_metrics.txt"                # Prometheus exposition landed
rm -rf "$OUT/live_cache"
echo "live-served run identical to clean run"

echo "== 14/17 SVG figures =="
python -m repro figures --scale small --seed 7 --out "$OUT/figures"

echo "== 15/17 dataset export =="
python -m repro simulate --scale small --seed 7 --out "$OUT/dataset"

echo "== 16/17 workload derivation =="
python -m repro workload --scale small --seed 7 --out "$OUT/workload.json"

echo "== 17/17 run ledger: history, dashboard, drift check =="
python -m repro runs list
python scripts/bench_guard.py --history --top 5
python -m repro runs report --out "$OUT/runs_report.html"
# The step-12 sampled run must have landed a utilization timeline panel.
grep -q "Utilization timeline" "$OUT/runs_report.html"
python -m repro runs check   # set -e: perf/fidelity/RSS drift is fatal

echo "done: $OUT"
