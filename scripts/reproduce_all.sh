#!/usr/bin/env bash
# Reproduce everything: tests, figures, benchmarks, validation.
#
# Usage: scripts/reproduce_all.sh [output_dir]
#
# Produces, under the output directory (default: ./reproduction_output):
#   test_output.txt    - full unit/integration/property test run
#   test_workers2.txt  - the same suite with REPRO_WORKERS=2 (pool paths hot)
#   coverage_gate.txt  - line-coverage gate over the gated packages
#   bench_guard.txt    - substrate perf guard vs BENCH_substrate.json
#   bench_output.txt   - per-figure benchmark run (paper shapes asserted)
#   bench_report.txt   - the paper-vs-measured report (copied from repo root)
#   validation.txt     - the calibration checklist at small scale
#   trace_medium.json  - span trace of an uncached medium-scale report run
#   trace_summary.txt  - per-phase wall/CPU totals from that trace
#   report_clean.txt   - medium-scale report, healthy environment
#   report_faulted.txt - the same report under injected faults (must diff clean)
#   report_sharded.txt - the same report built over 4 shards (must diff clean)
#   report_skewed.txt  - the 4-shard report with an injected straggler shard
#                        under a live pool: work stealing reschedules, bytes
#                        must not change (must diff clean)
#   report_eager.txt   - the same report with the lazy query engine disabled
#                        via REPRO_TABLES_EAGER=1 (must diff clean)
#   report_sampled.txt - the same report with --sample resource telemetry
#                        recording a utilization timeline (must diff clean)
#   report_live.txt    - the 4-shard report built with --live while curls
#                        hit /metrics, /events, and / (must diff clean)
#   live_metrics.txt   - a mid-build Prometheus /metrics scrape of that run
#   service_batch.txt  - every service route (tables, figures, fidelity)
#                        rendered locally from the one-shot batch study
#   service_incremental.txt - the same routes read back over HTTP after
#                        ingesting the study as 3 shuffled micro-batches
#                        (must diff service_batch.txt byte for byte)
#   figures/           - every paper figure as SVG
#   dataset/           - an exported released dataset (small scale)
#   workload.json      - the derived crowdsourcing workload
#   ledger/            - the persistent run ledger recorded by this pipeline
#   runs_report.html   - dashboard over the ledger (repro runs report)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-reproduction_output}"
mkdir -p "$OUT"

# Every study/bench run below records into a pipeline-local ledger, so the
# final drift check compares this pipeline's runs against each other.
export REPRO_LEDGER_DIR="$OUT/ledger"

echo "== 1/18 tests =="
python -m pytest tests/ 2>&1 | tee "$OUT/test_output.txt" | tail -1

echo "== 2/18 tests again with a live process pool (REPRO_WORKERS=2) =="
REPRO_WORKERS=2 python -m pytest tests/ 2>&1 | tee "$OUT/test_workers2.txt" | tail -1

echo "== 3/18 coverage gate (src/repro/{shard,tables,obs,service} >= 85%) =="
python scripts/coverage_gate.py 2>&1 | tee "$OUT/coverage_gate.txt" | tail -2

echo "== 4/18 substrate bench guard (fails on >25% regression vs BENCH_substrate.json) =="
python scripts/bench_guard.py 2>&1 | tee "$OUT/bench_guard.txt" | tail -1

echo "== 5/18 benchmarks (medium scale, regenerates every table & figure) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee "$OUT/bench_output.txt" | tail -1
cp bench_report.txt "$OUT/bench_report.txt"

echo "== 6/18 validation checklist =="
python -m repro validate --scale small --seed 7 2>&1 | tee "$OUT/validation.txt" | tail -1

echo "== 7/18 traced medium-scale report (writes trace_medium.json) =="
python -m repro report --scale medium --seed 7 --no-cache \
    --trace --trace-out "$OUT/trace_medium.json" > /dev/null
python -m repro trace "$OUT/trace_medium.json" --no-tree > "$OUT/trace_summary.txt"
head -7 "$OUT/trace_summary.txt"

echo "== 8/18 failure injection (faulted medium report must match the clean one) =="
python -m repro report --scale medium --seed 7 --no-cache \
    > "$OUT/report_clean.txt"
# REPRO_NO_LEDGER: a deliberately degraded diagnostic run must not become a
# baseline (or a candidate) for the drift check in step 17.
REPRO_CACHE_DIR="$OUT/fault_cache" REPRO_WORKERS=2 PYTHONWARNINGS=ignore \
    REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 \
    --faults 'cache.write:fail@1,pool.spawn:fail@1,pool.chunk:fail@1' \
    > "$OUT/report_faulted.txt"
diff "$OUT/report_clean.txt" "$OUT/report_faulted.txt"   # set -e: a diff is fatal
rm -rf "$OUT/fault_cache"
echo "faulted run identical to clean run"

echo "== 9/18 sharded execution (4-shard medium report must match the monolithic one) =="
# A private cache dir forces a genuine sharded build: the diff must prove
# byte identity of the pipeline, not a warm hit on the monolithic entry.
REPRO_CACHE_DIR="$OUT/shard_cache" \
    python -m repro report --scale medium --seed 7 --shards 4 \
    > "$OUT/report_sharded.txt"
diff "$OUT/report_clean.txt" "$OUT/report_sharded.txt"   # set -e: a diff is fatal
rm -rf "$OUT/shard_cache"
echo "sharded run identical to monolithic run"

echo "== 10/18 skewed shards (straggler + work stealing must not change bytes) =="
# shard.build:sleep@1 makes shard 0 a deterministic straggler; under a live
# 2-worker pool the as-completed dispatcher reschedules the remaining shards
# around it.  Scheduling must never leak into the output bytes.
REPRO_CACHE_DIR="$OUT/skew_cache" REPRO_WORKERS=2 REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 --shards 4 \
    --faults 'shard.build:sleep@1' \
    > "$OUT/report_skewed.txt"
diff "$OUT/report_clean.txt" "$OUT/report_skewed.txt"   # set -e: a diff is fatal
rm -rf "$OUT/skew_cache"
echo "skewed sharded run identical to clean run"

echo "== 11/18 lazy query engine off (REPRO_TABLES_EAGER=1 report must match the lazy one) =="
# A private cache dir forces a genuine eager rebuild; the diff proves the
# plan optimizer and parallel kernel dispatch never change a single byte.
REPRO_CACHE_DIR="$OUT/eager_cache" REPRO_TABLES_EAGER=1 REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 \
    > "$OUT/report_eager.txt"
diff "$OUT/report_clean.txt" "$OUT/report_eager.txt"   # set -e: a diff is fatal
rm -rf "$OUT/eager_cache"
echo "eager-engine run identical to lazy-engine run"

echo "== 12/18 resource telemetry (sampled 4-shard medium report must match the clean one) =="
# The sampler writes only into the run record, never to stdout: a sampled
# build must stay byte-identical.  A private cache dir forces a genuine
# sharded build so the record carries per-shard utilization intervals.
REPRO_CACHE_DIR="$OUT/sample_cache" \
    python -m repro report --scale medium --seed 7 --shards 4 --sample 25 \
    > "$OUT/report_sampled.txt"
diff "$OUT/report_clean.txt" "$OUT/report_sampled.txt"   # set -e: a diff is fatal
rm -rf "$OUT/sample_cache"
echo "sampled run identical to clean run"
python -m repro plan --scale tiny --seed 7 | tail -7

echo "== 13/18 live telemetry (served + probed 4-shard medium report must match the clean one) =="
# --live serves /metrics (Prometheus), /events (SSE), and the dashboard
# from inside the build process; the URL goes to stderr and the server
# never writes stdout, so a build polled and streamed mid-flight must stay
# byte-identical.  A private cache dir forces a genuine sharded build so
# shard progress events actually flow while the probes watch.
REPRO_CACHE_DIR="$OUT/live_cache" REPRO_NO_LEDGER=1 \
    python -m repro report --scale medium --seed 7 --shards 4 --live 8741 \
    > "$OUT/report_live.txt" 2> "$OUT/live_stderr.txt" &
LIVE_PID=$!
python - "$OUT" <<'EOF'
import json, sys, time, urllib.request

out, base = sys.argv[1], "http://127.0.0.1:8741"
deadline = time.monotonic() + 120.0
while True:  # wait for the in-build server to come up
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=1) as resp:
            assert json.loads(resp.read())["status"] == "ok"
        break
    except Exception:
        if time.monotonic() > deadline:
            raise SystemExit("live telemetry server never came up")
        time.sleep(0.1)
with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
    open(f"{out}/live_metrics.txt", "w").write(resp.read().decode())
with urllib.request.urlopen(
    base + "/events?limit=1&heartbeat=0.5", timeout=60
) as resp:
    stream = resp.read().decode()
assert "event: hello" in stream and "data: " in stream, stream
with urllib.request.urlopen(base + "/", timeout=10) as resp:
    assert "EventSource('/events')" in resp.read().decode()
print("live probes ok: /metrics, /events, and / all answered mid-build")
EOF
wait "$LIVE_PID"                                         # set -e: build failure is fatal
diff "$OUT/report_clean.txt" "$OUT/report_live.txt"      # set -e: a diff is fatal
grep -q '^repro_' "$OUT/live_metrics.txt"                # Prometheus exposition landed
rm -rf "$OUT/live_cache"
echo "live-served run identical to clean run"

echo "== 14/18 incremental service (3 shuffled HTTP micro-batches must match the batch study) =="
# repro serve --ingest hosts the marketplace-as-a-service write path.  The
# probe splits the medium study into 3 micro-batches, ingests them over
# HTTP in shuffled order, then reads every table, figure, and the fidelity
# probes back and writes one digest line per route; the same routes
# rendered locally from a one-shot batch fold produce the reference file.
# The diff is the merge-algebra invariant made visible: partitioning and
# arrival order must never change a served byte.
REPRO_NO_LEDGER=1 python -m repro serve --ingest --scale medium --seed 7 \
    --port 8742 --duration 900 > "$OUT/service_stdout.txt" 2>&1 &
SERVE_PID=$!
python - "$OUT" <<'EOF'
import hashlib, sys, time

sys.path.insert(0, "src")
from repro import build_study
from repro.service import ServiceClient, split_study
from repro.service.app import (
    ENRICHED_TABLES, STREAM_TABLES, fidelity_body, figure_body,
    figure_names, table_body,
)
from repro.service.state import ServiceState
from repro.simulator.config import SimulationConfig

out = sys.argv[1]
client = ServiceClient("127.0.0.1", 8742, timeout=600)
deadline = time.monotonic() + 120.0
while True:  # wait for the service to come up
    try:
        client.status()
        break
    except Exception:
        if time.monotonic() > deadline:
            raise SystemExit("incremental service never came up")
        time.sleep(0.1)

study = build_study("medium", seed=7, cache=False)
payloads = split_study(study, 3, seed=7)
for i in (2, 0, 1):  # deliberately out-of-order arrival
    client.ingest(payloads[i])

# Reference: the same study folded in one shot, rendered locally through
# the service's own (pure) rendering helpers.
state = ServiceState(SimulationConfig.preset("medium", seed=7))
state.ingest(split_study(study, 1, seed=7)[0])
snapshot = state.snapshot()
local = {}
for name, (method, _layers) in STREAM_TABLES.items():
    local[f"/tables/{name}"] = table_body(getattr(state, method)())
for name in ENRICHED_TABLES:
    local[f"/tables/{name}"] = table_body(getattr(snapshot.enriched, name))
for name in figure_names():
    local[f"/figures/{name}"] = figure_body(getattr(snapshot.figures, name)())
local["/fidelity"] = fidelity_body(snapshot.figures)

digest = lambda body: hashlib.sha256(body).hexdigest()
with open(f"{out}/service_batch.txt", "w") as batch_file, \
        open(f"{out}/service_incremental.txt", "w") as incr_file:
    for path in sorted(local):
        status, headers, body = client.get(path)
        assert status == 200, f"GET {path} -> {status}"
        batch_file.write(f"{path} {len(local[path])} {digest(local[path])}\n")
        incr_file.write(f"{path} {len(body)} {digest(body)}\n")
status, headers2, _ = client.get("/tables/batch_rollup")
status304, _, _ = client.get("/tables/batch_rollup", etag=headers2["etag"])
assert status304 == 304, f"conditional re-read -> {status304}, want 304"
client.close()
print(f"service probe ok: {len(local)} routes read back after shuffled ingest")
EOF
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
diff "$OUT/service_batch.txt" "$OUT/service_incremental.txt"  # set -e: a diff is fatal
echo "incrementally ingested service identical to one-shot batch study"

echo "== 15/18 SVG figures =="
python -m repro figures --scale small --seed 7 --out "$OUT/figures"

echo "== 16/18 dataset export =="
python -m repro simulate --scale small --seed 7 --out "$OUT/dataset"

echo "== 17/18 workload derivation =="
python -m repro workload --scale small --seed 7 --out "$OUT/workload.json"

echo "== 18/18 run ledger: history, dashboard, drift check =="
python -m repro runs list
python scripts/bench_guard.py --history --top 5
python -m repro runs report --out "$OUT/runs_report.html"
# The step-12 sampled run must have landed a utilization timeline panel.
grep -q "Utilization timeline" "$OUT/runs_report.html"
python -m repro runs check   # set -e: perf/fidelity/RSS drift is fatal

echo "done: $OUT"
