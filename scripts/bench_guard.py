#!/usr/bin/env python
"""Run the substrate micro-benchmarks and guard against perf regressions.

Runs ``benchmarks/test_substrate_perf.py`` under pytest-benchmark, extracts
the mean time of every bench plus the fast-vs-naive speedup ratios (each
``test_perf_<name>`` paired with its ``test_perf_<name>_naive`` seed
replica), and compares them with the committed baseline in
``BENCH_substrate.json`` at the repository root:

- a guarded bench whose mean time regresses more than ``--tolerance``
  (default 25%) against the baseline fails the run;
- a fast/naive speedup ratio that drops more than ``--tolerance`` below the
  baseline ratio also fails (ratios are far less machine-sensitive than
  absolute times, so both guards together catch real regressions without
  tripping on hardware differences alone).

Exit status is 1 on any regression, 0 otherwise.  ``--update-baseline``
rewrites ``BENCH_substrate.json`` with the measured numbers (also done
automatically when no baseline exists yet).

Every benchmark run also appends a ``kind="bench"`` record to the
persistent run ledger (:mod:`repro.obs.ledger`, honoring
``REPRO_LEDGER_DIR``/``REPRO_NO_LEDGER``), so ``BENCH_*.json`` deltas are
tracked over time instead of one-shot: ``--history`` prints the mean-time
trajectory of every bench across recorded runs (add ``--top N`` for the
latest run's ``plan.op.*`` operator hotspots, fed by the lazy-plan
profiler), and ``repro runs`` can list/diff/dashboard them alongside
study runs.

Trace modes (no benchmarks are run):

- ``--trace-summary TRACE.json`` prints per-span-name wall/CPU totals from
  a JSON trace written by a ``--trace`` CLI run;
- ``--trace-diff CURRENT.json BASE.json`` compares two such traces phase by
  phase and fails (exit 1) when any span name's total wall time regresses
  more than ``--tolerance`` beyond the noise floor — per-phase deltas, so a
  regression points at the pipeline stage that caused it rather than at the
  end-to-end total.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_substrate.json"
BENCH_FILE = "benchmarks/test_substrate_perf.py"
REPORT_PATH = REPO_ROOT / "bench_report.txt"

#: Benches whose speedup over the seed implementation the study relies on
#: (the vectorized minhash + group-by fast paths, the byte-level shingle
#: tokenizer, the lazy-plan fused/dictionary kernels, the work-stealing
#: chunk scheduler vs static placement, and the service's ETag response
#: cache vs re-rendering every read); their ratios must never silently
#: decay.
GUARDED_SPEEDUPS = (
    "minhash_batch",
    "group_by_median",
    "shingle_extraction",
    "dict_group_by",
    "fused_filter_project",
    "shard_sched_skewed",
    "service_read_cached",
)


def run_benchmarks(min_rounds: int) -> dict:
    """Run the substrate bench file; return the pytest-benchmark JSON."""
    report_backup = REPORT_PATH.read_bytes() if REPORT_PATH.exists() else None
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "-q",
            f"--benchmark-json={json_path}",
            f"--benchmark-min-rounds={min_rounds}",
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        # The benchmark conftest truncates bench_report.txt for figure
        # benches; a substrate-only run must not clobber the committed one.
        if report_backup is not None:
            REPORT_PATH.write_bytes(report_backup)
        if proc.returncode != 0:
            print("bench_guard: benchmark run failed", file=sys.stderr)
            sys.exit(proc.returncode)
        return json.loads(json_path.read_text())


def summarize(raw: dict) -> dict:
    means = {}
    for bench in raw["benchmarks"]:
        name = bench["name"].removeprefix("test_perf_")
        means[name] = bench["stats"]["mean"]
    speedups = {}
    for name, mean in means.items():
        naive = means.get(f"{name}_naive")
        if naive is not None and mean > 0:
            speedups[name] = naive / mean
    return {
        "bench_file": BENCH_FILE,
        "means_seconds": {k: round(v, 6) for k, v in sorted(means.items())},
        "speedups_vs_seed": {
            k: round(v, 2) for k, v in sorted(speedups.items())
        },
    }


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    regressions = []
    base_means = baseline.get("means_seconds", {})
    for name, base_mean in base_means.items():
        mean = current["means_seconds"].get(name)
        if mean is None:
            regressions.append(f"bench {name!r} missing from this run")
        elif mean > base_mean * (1.0 + tolerance):
            regressions.append(
                f"{name}: {mean * 1e3:.1f} ms vs baseline "
                f"{base_mean * 1e3:.1f} ms "
                f"(+{(mean / base_mean - 1.0) * 100:.0f}%)"
            )
    base_speedups = baseline.get("speedups_vs_seed", {})
    for name in GUARDED_SPEEDUPS:
        base = base_speedups.get(name)
        ratio = current["speedups_vs_seed"].get(name)
        if base is None:
            continue
        if ratio is None:
            regressions.append(f"speedup pair {name!r} missing from this run")
        elif ratio < base * (1.0 - tolerance):
            regressions.append(
                f"{name} speedup fell to {ratio:.1f}x "
                f"(baseline {base:.1f}x)"
            )
    return regressions


#: Span names whose baseline total is below this are skipped by
#: ``--trace-diff`` — sub-10ms phases are all jitter.
_TRACE_NOISE_FLOOR_S = 0.010


def _trace_totals(path: str) -> dict[str, dict[str, float]]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import aggregate_by_name, load_trace

    return aggregate_by_name(load_trace(path))


def _ledger():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import ledger

    return ledger


def record_bench_run(current: dict, regressions: list[str]) -> None:
    """Append this benchmark run to the persistent run ledger (best effort).

    Bench means become the record's ``phases`` so the same drift/dashboard
    machinery that watches study phases charts the bench trajectory too.
    """
    ledger = _ledger()
    if not ledger.ledger_enabled():
        return
    means = current["means_seconds"]
    record = ledger.build_record(
        kind="bench",
        command="bench_guard",
        config={"bench_file": current["bench_file"]},
        extra={
            "total_wall_s": round(sum(means.values()), 6),
            "phases": {
                name: {"count": 1, "wall_s": mean, "cpu_s": 0.0}
                for name, mean in means.items()
            },
            "speedups_vs_seed": current["speedups_vs_seed"],
            "regressions": regressions,
        },
    )
    ledger.append_record(record)


def _num(value, default: float = 0.0) -> float:
    """Best-effort float for ledger fields; legacy garbage becomes ``default``."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _phases_of(record) -> dict:
    phases = record.get("phases")
    return phases if isinstance(phases, dict) else {}


def _print_op_hotspots(ledger, top: int) -> None:
    """The latest recorded run's ``plan.op.*`` phases, ranked by wall time.

    Study runs fold every lazy-plan operator execution into these phases
    (see ``repro.tables.plan``), so the hotspot listing points at the
    operator — group_by, fused_filter, join — not just the pipeline stage.
    Ledgers span schema generations, so records missing ``top_ops``-style
    phase aggregates (or carrying malformed ones) are skipped with a note
    instead of tracebacking.
    """
    skipped = 0
    latest = None
    for r in reversed(ledger.read_records()):
        phases = _phases_of(r)
        if not any(
            name.startswith("plan.op.") and isinstance(agg, dict)
            for name, agg in phases.items()
        ):
            if any(str(name).startswith("plan.op.") for name in phases):
                skipped += 1  # has the phases, but in an unreadable shape
            continue
        latest = r
        break
    if latest is None:
        print(
            "bench_guard: no recorded run carries plan.op.* operator phases"
            + (f" ({skipped} legacy record(s) skipped)" if skipped else "")
        )
        return
    ops = sorted(
        (
            (name.removeprefix("plan.op."), agg)
            for name, agg in _phases_of(latest).items()
            if name.startswith("plan.op.") and isinstance(agg, dict)
        ),
        key=lambda kv: -_num(kv[1].get("wall_s", 0.0)),
    )[:top]
    print(
        f"\nbench_guard: top {len(ops)} plan operators by wall time "
        f"(run {latest.get('run_id', '?')})"
    )
    print(f"  {'operator':<20} {'count':>6} {'wall':>12} {'cpu':>12}")
    for name, agg in ops:
        print(
            f"  {name:<20} {_num(agg.get('count', 0)):>6.0f} "
            f"{_num(agg.get('wall_s', 0.0)) * 1e3:>9.2f} ms "
            f"{_num(agg.get('cpu_s', 0.0)) * 1e3:>9.2f} ms"
        )


def history(top: int = 0) -> int:
    """Print the mean-time trajectory of every bench from the run ledger."""
    ledger = _ledger()
    records = [
        r for r in ledger.read_records() if r.get("kind") == "bench"
    ]
    if not records:
        print(
            f"bench_guard: no bench runs recorded in {ledger.ledger_path()}"
        )
        if top:
            _print_op_hotspots(ledger, top)
        return 0
    shown = records[-8:]
    print(
        f"bench_guard: mean-time trajectory over {len(records)} recorded "
        f"run(s) (showing last {len(shown)}; ms per bench)"
    )
    # Legacy records (earlier writers, truncated lines) may miss run_id,
    # phases, or carry non-mapping aggregates; show what is readable and
    # render '-' for the rest — the history view must never traceback.
    gaps = 0
    header_cells = []
    for r in shown:
        run_id = str(r.get("run_id") or "")
        label = run_id[9:15] if len(run_id) > 9 else (run_id or "?")
        if not run_id:
            gaps += 1
        header_cells.append(f"{label:>9.9}")
    print(f"  {'bench':<28}{''.join(header_cells)}")
    names = sorted({
        name for record in shown for name in _phases_of(record)
    })
    for name in names:
        cells = []
        for record in shown:
            agg = _phases_of(record).get(name)
            wall = _num(agg.get("wall_s"), -1.0) if isinstance(agg, dict) else -1.0
            if wall < 0 and agg is not None:
                gaps += 1
            cells.append(f"{wall * 1e3:>9.2f}" if wall >= 0 else f"{'-':>9}")
        print(f"  {name:<28}{''.join(cells)}")
    print(f"  {'-- speedups vs seed --':<28}")
    speedups_of = lambda r: (
        r.get("speedups_vs_seed")
        if isinstance(r.get("speedups_vs_seed"), dict) else {}
    )
    speedup_names = sorted({
        name for record in shown for name in speedups_of(record)
    })
    for name in speedup_names:
        cells = []
        for record in shown:
            ratio = _num(speedups_of(record).get(name), -1.0)
            cells.append(f"{ratio:>8.1f}x" if ratio > 0 else f"{'-':>9}")
        print(f"  {name:<28}{''.join(cells)}")
    if gaps:
        print(
            f"bench_guard: note — {gaps} legacy field(s) unreadable in the "
            f"shown records (rendered as '-')"
        )
    if top:
        _print_op_hotspots(ledger, top)
    return 0


def trace_summary(path: str) -> int:
    try:
        totals = _trace_totals(path)
    except (OSError, ValueError) as exc:
        print(f"bench_guard: cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(f"bench_guard: per-phase wall totals from {path}")
    print(f"  {'span':<36} {'count':>6} {'wall':>12} {'cpu':>12}")
    for name, agg in sorted(totals.items(), key=lambda kv: -kv[1]["wall_s"]):
        print(
            f"  {name:<36} {agg['count']:>6.0f} {agg['wall_s'] * 1e3:>9.1f} ms"
            f" {agg['cpu_s'] * 1e3:>9.1f} ms"
        )
    return 0


def trace_diff(current_path: str, base_path: str, tolerance: float) -> int:
    try:
        current = _trace_totals(current_path)
        base = _trace_totals(base_path)
    except (OSError, ValueError) as exc:
        print(f"bench_guard: cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(
        f"bench_guard: per-phase trace diff ({current_path} vs {base_path})"
    )
    regressions = []
    for name in sorted(set(base) | set(current)):
        base_wall = base.get(name, {}).get("wall_s", 0.0)
        cur_wall = current.get(name, {}).get("wall_s", 0.0)
        if max(base_wall, cur_wall) < _TRACE_NOISE_FLOOR_S:
            continue
        if base_wall > 0:
            delta = cur_wall / base_wall - 1.0
            note = f"{delta:+7.0%}"
            if delta > tolerance:
                regressions.append(
                    f"{name}: {cur_wall * 1e3:.1f} ms vs "
                    f"{base_wall * 1e3:.1f} ms ({delta:+.0%})"
                )
        else:
            note = "    new"
        print(
            f"  {name:<36} {cur_wall * 1e3:>9.1f} ms"
            f" (base {base_wall * 1e3:>9.1f} ms) {note}"
        )
    if regressions:
        print("\nbench_guard: PER-PHASE TRACE REGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_guard: OK (no phase beyond +{tolerance * 100:.0f}%)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} with this run's numbers",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--min-rounds",
        type=int,
        default=5,
        help="pytest-benchmark rounds per bench (default 5)",
    )
    parser.add_argument(
        "--trace-summary",
        metavar="TRACE",
        help="print per-span-name totals from a JSON trace and exit",
    )
    parser.add_argument(
        "--trace-diff",
        nargs=2,
        metavar=("CURRENT", "BASE"),
        help="diff two JSON traces phase by phase and exit 1 on regression",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="print the bench trajectory from the run ledger and exit",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="with --history: also list the latest run's top-N plan.op.* "
        "operator hotspots from the ledger",
    )
    args = parser.parse_args()

    if args.history:
        return history(args.top)
    if args.trace_summary:
        return trace_summary(args.trace_summary)
    if args.trace_diff:
        return trace_diff(*args.trace_diff, tolerance=args.tolerance)

    current = summarize(run_benchmarks(args.min_rounds))

    print("\nbench_guard: measured means")
    for name, mean in current["means_seconds"].items():
        print(f"  {name:32s} {mean * 1e3:10.2f} ms")
    print("bench_guard: speedups vs seed implementation")
    for name, ratio in current["speedups_vs_seed"].items():
        print(f"  {name:32s} {ratio:9.1f}x")

    if args.update_baseline or not BASELINE_PATH.exists():
        merged = dict(current)
        if BASELINE_PATH.exists():
            # Preserve sections other writers own (e.g. the 'service_load'
            # block from scripts/load_service.py) — a bench refresh must
            # not drop them.
            old = json.loads(BASELINE_PATH.read_text())
            for key, value in old.items():
                merged.setdefault(key, value)
        BASELINE_PATH.write_text(json.dumps(merged, indent=2) + "\n")
        record_bench_run(current, [])
        print(f"bench_guard: baseline written to {BASELINE_PATH.name}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    regressions = compare(current, baseline, args.tolerance)
    record_bench_run(current, regressions)
    if regressions:
        print("\nbench_guard: PERFORMANCE REGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_guard: OK (within {args.tolerance * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
