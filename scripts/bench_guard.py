#!/usr/bin/env python
"""Run the substrate micro-benchmarks and guard against perf regressions.

Runs ``benchmarks/test_substrate_perf.py`` under pytest-benchmark, extracts
the mean time of every bench plus the fast-vs-naive speedup ratios (each
``test_perf_<name>`` paired with its ``test_perf_<name>_naive`` seed
replica), and compares them with the committed baseline in
``BENCH_substrate.json`` at the repository root:

- a guarded bench whose mean time regresses more than ``--tolerance``
  (default 25%) against the baseline fails the run;
- a fast/naive speedup ratio that drops more than ``--tolerance`` below the
  baseline ratio also fails (ratios are far less machine-sensitive than
  absolute times, so both guards together catch real regressions without
  tripping on hardware differences alone).

Exit status is 1 on any regression, 0 otherwise.  ``--update-baseline``
rewrites ``BENCH_substrate.json`` with the measured numbers (also done
automatically when no baseline exists yet).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_substrate.json"
BENCH_FILE = "benchmarks/test_substrate_perf.py"
REPORT_PATH = REPO_ROOT / "bench_report.txt"

#: Benches whose speedup over the seed implementation the study relies on
#: (the vectorized minhash + group-by fast paths); their ratios must never
#: silently decay.
GUARDED_SPEEDUPS = ("minhash_batch", "group_by_median")


def run_benchmarks(min_rounds: int) -> dict:
    """Run the substrate bench file; return the pytest-benchmark JSON."""
    report_backup = REPORT_PATH.read_bytes() if REPORT_PATH.exists() else None
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "-q",
            f"--benchmark-json={json_path}",
            f"--benchmark-min-rounds={min_rounds}",
        ]
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        # The benchmark conftest truncates bench_report.txt for figure
        # benches; a substrate-only run must not clobber the committed one.
        if report_backup is not None:
            REPORT_PATH.write_bytes(report_backup)
        if proc.returncode != 0:
            print("bench_guard: benchmark run failed", file=sys.stderr)
            sys.exit(proc.returncode)
        return json.loads(json_path.read_text())


def summarize(raw: dict) -> dict:
    means = {}
    for bench in raw["benchmarks"]:
        name = bench["name"].removeprefix("test_perf_")
        means[name] = bench["stats"]["mean"]
    speedups = {}
    for name, mean in means.items():
        naive = means.get(f"{name}_naive")
        if naive is not None and mean > 0:
            speedups[name] = naive / mean
    return {
        "bench_file": BENCH_FILE,
        "means_seconds": {k: round(v, 6) for k, v in sorted(means.items())},
        "speedups_vs_seed": {
            k: round(v, 2) for k, v in sorted(speedups.items())
        },
    }


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    regressions = []
    base_means = baseline.get("means_seconds", {})
    for name, base_mean in base_means.items():
        mean = current["means_seconds"].get(name)
        if mean is None:
            regressions.append(f"bench {name!r} missing from this run")
        elif mean > base_mean * (1.0 + tolerance):
            regressions.append(
                f"{name}: {mean * 1e3:.1f} ms vs baseline "
                f"{base_mean * 1e3:.1f} ms "
                f"(+{(mean / base_mean - 1.0) * 100:.0f}%)"
            )
    base_speedups = baseline.get("speedups_vs_seed", {})
    for name in GUARDED_SPEEDUPS:
        base = base_speedups.get(name)
        ratio = current["speedups_vs_seed"].get(name)
        if base is None:
            continue
        if ratio is None:
            regressions.append(f"speedup pair {name!r} missing from this run")
        elif ratio < base * (1.0 - tolerance):
            regressions.append(
                f"{name} speedup fell to {ratio:.1f}x "
                f"(baseline {base:.1f}x)"
            )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"rewrite {BASELINE_PATH.name} with this run's numbers",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--min-rounds",
        type=int,
        default=5,
        help="pytest-benchmark rounds per bench (default 5)",
    )
    args = parser.parse_args()

    current = summarize(run_benchmarks(args.min_rounds))

    print("\nbench_guard: measured means")
    for name, mean in current["means_seconds"].items():
        print(f"  {name:32s} {mean * 1e3:10.2f} ms")
    print("bench_guard: speedups vs seed implementation")
    for name, ratio in current["speedups_vs_seed"].items():
        print(f"  {name:32s} {ratio:9.1f}x")

    if args.update_baseline or not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"bench_guard: baseline written to {BASELINE_PATH.name}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    regressions = compare(current, baseline, args.tolerance)
    if regressions:
        print("\nbench_guard: PERFORMANCE REGRESSIONS:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_guard: OK (within {args.tolerance * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
