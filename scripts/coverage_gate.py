#!/usr/bin/env python
"""Coverage gate: the sharded pipeline must stay thoroughly tested.

Gates
-----
- ``src/repro/shard*``: **>= 85%** line coverage, enforced always.  The
  shard package is the byte-identity-critical code path; the differential
  suite must keep touching essentially all of it.
- repo-wide ``src/repro``: **>= 80%**, enforced when the ``coverage``
  package (the engine behind ``pytest-cov``, declared in the ``dev``
  extra) is importable, and *visibly skipped* otherwise — measuring the
  whole package with the fallback tracer would slow the suite severely.

Fallback
--------
Environments without ``coverage`` still get the shard gate: line events
are collected with :func:`sys.settrace`, scoped so that only frames whose
code lives under ``src/repro/shard`` are line-traced (every other frame
returns ``None`` from the trace function, so the rest of the suite runs
at near-native speed).  Executable lines are derived from the compiled
code objects (``co_lines``), minus ``pragma: no cover`` exclusions.

Usage::

    python scripts/coverage_gate.py [pytest args...]

Default pytest targets are the shard-focused suites; pass explicit paths
to widen the run (with ``coverage`` installed, the repo-wide gate wants
the full ``tests/`` directory).
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

MIN_SHARD_PCT = 85.0
MIN_REPO_PCT = 80.0

#: Suites that exercise the shard package end to end.
DEFAULT_TESTS = [
    "tests/test_shard_equivalence.py",
    "tests/test_shard_merge_properties.py",
]


def shard_files() -> list[Path]:
    return sorted((SRC / "repro" / "shard").glob("*.py"))


def executable_lines(path: Path) -> set[int]:
    """Line numbers that can execute, from the compiled code objects.

    ``pragma: no cover`` excludes its line; when that line opens a block
    (ends with ``:``), the whole indented block is excluded with it.
    """
    source = path.read_text()
    lines: set[int] = set()

    def walk(code) -> None:
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                walk(const)

    walk(compile(source, str(path), "exec"))

    raw = source.splitlines()
    excluded: set[int] = set()
    for i, text in enumerate(raw, start=1):
        if "pragma: no cover" not in text:
            continue
        excluded.add(i)
        if text.rstrip().rstrip("#").strip().endswith(":") or text.split("#")[0].rstrip().endswith(":"):
            indent = len(text) - len(text.lstrip())
            for j in range(i + 1, len(raw) + 1):
                body = raw[j - 1]
                if body.strip() and (len(body) - len(body.lstrip())) <= indent:
                    break
                excluded.add(j)
    return lines - excluded


def render(rows: list[tuple[str, int, int]]) -> float:
    """Print a per-file table; returns the aggregate percentage."""
    total_exec = total_hit = 0
    print(f"  {'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for name, n_exec, n_hit in rows:
        total_exec += n_exec
        total_hit += n_hit
        pct = 100.0 * n_hit / n_exec if n_exec else 100.0
        print(f"  {name:<44} {n_exec:>6} {n_hit:>6} {pct:>6.1f}%")
    aggregate = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<44} {total_exec:>6} {total_hit:>6} {aggregate:>6.1f}%")
    return aggregate


def run_with_coverage_package(test_args: list[str]) -> int:
    import coverage
    import pytest

    cov = coverage.Coverage(source=[str(SRC / "repro")])
    cov.start()
    rc = pytest.main(["-q", *test_args])
    cov.stop()
    if rc != 0:
        print(f"coverage gate: pytest failed (rc={rc})", file=sys.stderr)
        return rc

    shard_rows, repo_rows = [], []
    for filename in cov.get_data().measured_files():
        path = Path(filename)
        try:
            _, executable, _, missing, _ = cov.analysis2(filename)
        except Exception:
            continue
        row = (
            str(path.relative_to(SRC)),
            len(executable),
            len(executable) - len(missing),
        )
        repo_rows.append(row)
        if path.is_relative_to(SRC / "repro" / "shard"):
            shard_rows.append(row)

    print("\ncoverage (src/repro/shard):")
    shard_pct = render(sorted(shard_rows))
    print("\ncoverage (src/repro, repo-wide):")
    repo_pct = render(sorted(repo_rows))

    ok = True
    if shard_pct < MIN_SHARD_PCT:
        print(
            f"coverage gate: FAIL — src/repro/shard at {shard_pct:.1f}% "
            f"< {MIN_SHARD_PCT:.0f}%",
            file=sys.stderr,
        )
        ok = False
    if repo_pct < MIN_REPO_PCT:
        print(
            f"coverage gate: FAIL — src/repro at {repo_pct:.1f}% "
            f"< {MIN_REPO_PCT:.0f}%",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"coverage gate: OK — shard {shard_pct:.1f}% "
            f"(>= {MIN_SHARD_PCT:.0f}%), repo {repo_pct:.1f}% "
            f"(>= {MIN_REPO_PCT:.0f}%)"
        )
    return 0 if ok else 1


def run_with_settrace(test_args: list[str]) -> int:
    targets = {str(p): p for p in shard_files()}
    executed: dict[str, set[int]] = {name: set() for name in targets}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in targets:
            return local_trace
        return None

    import pytest

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        rc = pytest.main(["-q", *test_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if rc != 0:
        print(f"coverage gate: pytest failed (rc={rc})", file=sys.stderr)
        return rc

    rows = []
    for name, path in sorted(targets.items()):
        lines = executable_lines(path)
        hit = executed[name] & lines
        rows.append((str(path.relative_to(SRC)), len(lines), len(hit)))
    print("\ncoverage (src/repro/shard, settrace fallback):")
    shard_pct = render(rows)
    print(
        f"coverage gate: repo-wide {MIN_REPO_PCT:.0f}% gate SKIPPED — "
        f"the 'coverage' package (pytest-cov) is not installed; the "
        f"settrace fallback scopes line collection to src/repro/shard"
    )
    if shard_pct < MIN_SHARD_PCT:
        print(
            f"coverage gate: FAIL — src/repro/shard at {shard_pct:.1f}% "
            f"< {MIN_SHARD_PCT:.0f}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"coverage gate: OK — shard {shard_pct:.1f}% (>= {MIN_SHARD_PCT:.0f}%)"
    )
    return 0


def main(argv: list[str]) -> int:
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            # The gate must observe these modules' import-time lines too.
            del sys.modules[name]
    test_args = argv or DEFAULT_TESTS
    try:
        import coverage  # noqa: F401 - availability probe
    except ImportError:
        return run_with_settrace(test_args)
    return run_with_coverage_package(test_args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
