#!/usr/bin/env python
"""Coverage gate: the byte-identity-critical packages must stay tested.

Gates
-----
- ``src/repro/shard``: **>= 85%** line coverage, enforced always.  The
  shard package is the byte-identity-critical code path; the differential
  suite must keep touching essentially all of it.
- ``src/repro/tables``: **>= 85%**, enforced always.  The lazy query
  engine (plans, fused kernels, dictionary columns) underpins every
  analysis table; its property suites must keep touching all of it.
- ``src/repro/obs``: **>= 85%**, enforced always.  The observability
  stack (tracing, metrics, sampler, ledger, drift, dashboard) is what
  every perf/fidelity/RSS guard trusts; untested telemetry lies.
- ``src/repro/parallel.py``: **>= 85%**, enforced always.  The
  as-completed chunk dispatcher carries the deadline-from-dispatch and
  fold-only-on-success invariants every pooled build relies on (a gate
  may name a single module as well as a package).
- repo-wide ``src/repro``: **>= 80%**, enforced when the ``coverage``
  package (the engine behind ``pytest-cov``, declared in the ``dev``
  extra) is importable, and *visibly skipped* otherwise — measuring the
  whole package with the fallback tracer would slow the suite severely.

Fallback
--------
Environments without ``coverage`` still get the per-package gates: line
events are collected with :func:`sys.settrace`, scoped so that only
frames whose code lives under a gated package are line-traced (every
other frame returns ``None`` from the trace function, so the rest of the
suite runs at near-native speed).  Executable lines are derived from the
compiled code objects (``co_lines``), minus ``pragma: no cover``
exclusions.

Usage::

    python scripts/coverage_gate.py [pytest args...]

Default pytest targets are the shard- and tables-focused suites; pass
explicit paths to widen the run (with ``coverage`` installed, the
repo-wide gate wants the full ``tests/`` directory).
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Per-package (or per-module) minimum line coverage, enforced in every
#: environment.  A key names either a package directory under src/repro/
#: or a single module (resolved as <key>.py).
PACKAGE_GATES: dict[str, float] = {
    "shard": 85.0,
    "tables": 85.0,
    "obs": 85.0,
    "parallel": 85.0,
    "service": 85.0,
}
MIN_REPO_PCT = 80.0

#: Suites that exercise the gated packages end to end.
DEFAULT_TESTS = [
    "tests/test_shard_equivalence.py",
    "tests/test_shard_merge_properties.py",
    "tests/test_shard_scheduler.py",
    "tests/test_parallel.py",
    "tests/test_faults.py",
    "tests/test_tables_table.py",
    "tests/test_tables_expr.py",
    "tests/test_tables_groupby.py",
    "tests/test_tables_join_io.py",
    "tests/test_tables_properties.py",
    "tests/test_tables_plan.py",
    "tests/test_tables_dict.py",
    "tests/test_stats_bootstrap_pivot.py",
    "tests/test_obs.py",
    "tests/test_sampler.py",
    "tests/test_ledger.py",
    "tests/test_live.py",
    "tests/test_cli_smoke.py",
    "tests/test_service_equivalence.py",
    "tests/test_service_properties.py",
    "tests/test_service_faults.py",
]


def package_files(package: str) -> list[Path]:
    """Gated files for one key: a package's modules, or the single module
    ``<key>.py`` when the key names a file rather than a directory."""
    root = SRC / "repro" / package
    if root.is_dir():
        return sorted(root.glob("*.py"))
    module = root.with_suffix(".py")
    return [module] if module.is_file() else []


def executable_lines(path: Path) -> set[int]:
    """Line numbers that can execute, from the compiled code objects.

    ``pragma: no cover`` excludes its line; when that line opens a block
    (ends with ``:``), the whole indented block is excluded with it.
    """
    source = path.read_text()
    lines: set[int] = set()

    def walk(code) -> None:
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                walk(const)

    walk(compile(source, str(path), "exec"))

    raw = source.splitlines()
    excluded: set[int] = set()
    for i, text in enumerate(raw, start=1):
        if "pragma: no cover" not in text:
            continue
        excluded.add(i)
        if text.rstrip().rstrip("#").strip().endswith(":") or text.split("#")[0].rstrip().endswith(":"):
            indent = len(text) - len(text.lstrip())
            for j in range(i + 1, len(raw) + 1):
                body = raw[j - 1]
                if body.strip() and (len(body) - len(body.lstrip())) <= indent:
                    break
                excluded.add(j)
    return lines - excluded


def render(rows: list[tuple[str, int, int]]) -> float:
    """Print a per-file table; returns the aggregate percentage."""
    total_exec = total_hit = 0
    print(f"  {'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for name, n_exec, n_hit in rows:
        total_exec += n_exec
        total_hit += n_hit
        pct = 100.0 * n_hit / n_exec if n_exec else 100.0
        print(f"  {name:<44} {n_exec:>6} {n_hit:>6} {pct:>6.1f}%")
    aggregate = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"  {'TOTAL':<44} {total_exec:>6} {total_hit:>6} {aggregate:>6.1f}%")
    return aggregate


def run_with_coverage_package(test_args: list[str]) -> int:
    import coverage
    import pytest

    cov = coverage.Coverage(source=[str(SRC / "repro")])
    cov.start()
    rc = pytest.main(["-q", *test_args])
    cov.stop()
    if rc != 0:
        print(f"coverage gate: pytest failed (rc={rc})", file=sys.stderr)
        return rc

    gate_of = {
        str(p): name for name in PACKAGE_GATES for p in package_files(name)
    }
    package_rows: dict[str, list] = {name: [] for name in PACKAGE_GATES}
    repo_rows = []
    for filename in cov.get_data().measured_files():
        path = Path(filename)
        try:
            _, executable, _, missing, _ = cov.analysis2(filename)
        except Exception:
            continue
        row = (
            str(path.relative_to(SRC)),
            len(executable),
            len(executable) - len(missing),
        )
        repo_rows.append(row)
        gate = gate_of.get(str(path))
        if gate is not None:
            package_rows[gate].append(row)

    package_pcts = {}
    for name in PACKAGE_GATES:
        print(f"\ncoverage (src/repro/{name}):")
        package_pcts[name] = render(sorted(package_rows[name]))
    print("\ncoverage (src/repro, repo-wide):")
    repo_pct = render(sorted(repo_rows))

    ok = True
    for name, minimum in PACKAGE_GATES.items():
        if package_pcts[name] < minimum:
            print(
                f"coverage gate: FAIL — src/repro/{name} at "
                f"{package_pcts[name]:.1f}% < {minimum:.0f}%",
                file=sys.stderr,
            )
            ok = False
    if repo_pct < MIN_REPO_PCT:
        print(
            f"coverage gate: FAIL — src/repro at {repo_pct:.1f}% "
            f"< {MIN_REPO_PCT:.0f}%",
            file=sys.stderr,
        )
        ok = False
    if ok:
        summary = ", ".join(
            f"{name} {package_pcts[name]:.1f}% (>= {minimum:.0f}%)"
            for name, minimum in PACKAGE_GATES.items()
        )
        print(
            f"coverage gate: OK — {summary}, repo {repo_pct:.1f}% "
            f"(>= {MIN_REPO_PCT:.0f}%)"
        )
    return 0 if ok else 1


def run_with_settrace(test_args: list[str]) -> int:
    package_of = {
        str(p): name for name in PACKAGE_GATES for p in package_files(name)
    }
    targets = {path: Path(path) for path in package_of}
    executed: dict[str, set[int]] = {name: set() for name in targets}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in targets:
            return local_trace
        return None

    import pytest

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        rc = pytest.main(["-q", *test_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if rc != 0:
        print(f"coverage gate: pytest failed (rc={rc})", file=sys.stderr)
        return rc

    rows_by_package: dict[str, list] = {name: [] for name in PACKAGE_GATES}
    for filename, path in sorted(targets.items()):
        lines = executable_lines(path)
        hit = executed[filename] & lines
        rows_by_package[package_of[filename]].append(
            (str(path.relative_to(SRC)), len(lines), len(hit))
        )
    package_pcts = {}
    for name in PACKAGE_GATES:
        print(f"\ncoverage (src/repro/{name}, settrace fallback):")
        package_pcts[name] = render(rows_by_package[name])
    gated = ", ".join(f"src/repro/{name}" for name in PACKAGE_GATES)
    print(
        f"coverage gate: repo-wide {MIN_REPO_PCT:.0f}% gate SKIPPED — "
        f"the 'coverage' package (pytest-cov) is not installed; the "
        f"settrace fallback scopes line collection to {gated}"
    )
    failed = False
    for name, minimum in PACKAGE_GATES.items():
        if package_pcts[name] < minimum:
            print(
                f"coverage gate: FAIL — src/repro/{name} at "
                f"{package_pcts[name]:.1f}% < {minimum:.0f}%",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    summary = ", ".join(
        f"{name} {package_pcts[name]:.1f}% (>= {minimum:.0f}%)"
        for name, minimum in PACKAGE_GATES.items()
    )
    print(f"coverage gate: OK — {summary}")
    return 0


def main(argv: list[str]) -> int:
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            # The gate must observe these modules' import-time lines too.
            del sys.modules[name]
    test_args = argv or DEFAULT_TESTS
    try:
        import coverage  # noqa: F401 - availability probe
    except ImportError:
        return run_with_settrace(test_args)
    return run_with_coverage_package(test_args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
