"""Setup shim: the offline environment lacks the `wheel` package, so
`pip install -e .` falls back to this legacy path (`setup.py develop`)."""

from setuptools import setup

setup()
